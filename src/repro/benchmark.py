"""Hot-path performance baseline: measure, record, compare.

The simulator's per-event dispatch cost bounds every experiment's wall
time, so this module gives it a first-class measurement harness with
two levels:

- **Micro** (:func:`bench_engine_dispatch`): pure engine dispatch —
  pre-schedule batches of no-op callbacks and time ``Simulator.run``
  draining them.  Batch timings yield p50/p95 per-event cost, isolating
  the heap + dispatch loop from protocol work.
- **Meso** (:func:`bench_saturated`): the E6 saturated-throughput
  workload (the hottest real configuration: a source that never runs
  dry over a nominal link), reporting simulator events/sec and link
  frames/sec end to end.
- **Macro** (:func:`bench_sweep_scale`): the replication *plane* — a
  replicated sweep through :func:`repro.experiments.parallel.run_sweep`
  measured in points/sec, serial vs. a warm 2- and 4-worker pool, plus
  the latency of a fully cache-hot re-run.  This is the regime the
  paper's Monte-Carlo evaluation actually lives in.
- **Constellation** (:func:`bench_constellation_scale`): M concurrent
  LAMS-DLC links in one engine via the topology layer — events/sec and
  peak per-link buffered state at 10/100/1000 links, tracking how far
  a single :class:`~repro.simulator.engine.Simulator` scales.

:func:`run_hotpath_bench` bundles all of it into one JSON-able payload
and :func:`write_baseline` lands it in ``BENCH_hotpath.json`` — the
perf-regression baseline the CLI (``python -m repro bench-baseline``)
and ``make bench-smoke`` refresh — stamped with the git commit,
hostname, and CPU count, and appends a compact record to
``BENCH_history.jsonl`` so the performance *trajectory* across commits
is kept, not just the latest snapshot.  Comparing records from the
same machine exposes regressions without the noise of cross-machine
numbers.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import statistics
import subprocess
import time
from typing import Any, Optional

from .core.config import _default_batch_window
from .simulator.engine import Simulator, engine_backend

__all__ = [
    "DEFAULT_HISTORY",
    "DEFAULT_OUTPUT",
    "append_history",
    "bench_constellation_scale",
    "bench_engine_dispatch",
    "bench_saturated",
    "bench_sweep_scale",
    "compare_last_two",
    "machine_stamp",
    "profile_hotpath_bench",
    "read_history",
    "run_hotpath_bench",
    "write_baseline",
]

DEFAULT_OUTPUT = "BENCH_hotpath.json"
DEFAULT_HISTORY = "BENCH_history.jsonl"


def _noop() -> None:
    pass


def bench_engine_dispatch(
    total_events: int = 200_000, batch: int = 10_000
) -> dict[str, Any]:
    """Micro-benchmark the engine's event dispatch loop.

    Schedules *batch* no-op callbacks at distinct times (untimed), then
    times ``run()`` draining them; repeats until *total_events* have
    been dispatched.  Per-batch timings give p50/p95 per-event cost, so
    one slow batch (GC pause, scheduler hiccup) shows up in the tail
    instead of polluting the headline number.
    """
    if batch <= 0 or total_events <= 0:
        raise ValueError("batch and total_events must be positive")
    rounds = max(1, total_events // batch)
    per_event_costs: list[float] = []
    dispatched = 0
    wall = 0.0
    for round_index in range(rounds):
        sim = Simulator()
        schedule = sim.schedule
        for index in range(batch):
            schedule(index * 1e-9, _noop)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        wall += elapsed
        dispatched += sim.event_count
        per_event_costs.append(elapsed / batch)
    per_event_costs.sort()
    p50 = statistics.median(per_event_costs)
    p95 = per_event_costs[min(len(per_event_costs) - 1,
                              int(0.95 * len(per_event_costs)))]
    return {
        "kind": "engine_dispatch",
        "engine": engine_backend(),
        "events": dispatched,
        "batch": batch,
        "rounds": rounds,
        "wall_seconds": wall,
        "events_per_sec": dispatched / wall if wall > 0 else float("inf"),
        "per_event_p50_us": p50 * 1e6,
        "per_event_p95_us": p95 * 1e6,
    }


def bench_saturated(
    scenario: str = "nominal",
    protocol: str = "lams",
    duration: float = 2.0,
    seed: int = 1,
) -> dict[str, Any]:
    """Meso-benchmark: the E6 saturated-throughput workload.

    Mirrors :func:`repro.experiments.runner.measure_saturated`'s setup
    (saturated source, one-way transfer) but keeps hold of the
    simulator so the result reports events/sec and frames/sec — the
    quantities the hot-path work optimises — alongside the delivered
    count that proves the run did real protocol work.
    """
    # Imported here so the micro bench stays importable even if the
    # workload stack is mid-refactor.
    from .workloads.generators import SaturatedSource
    from .workloads.scenarios import build_simulation, preset

    link_scenario = preset(scenario)
    setup = build_simulation(link_scenario, protocol, seed=seed)
    sender = setup.endpoint_a.sender
    source = SaturatedSource(
        setup.sim, setup.endpoint_a,
        backlog_fn=lambda: sender.pending_count,
        low_water=256, chunk=512,
        poll_interval=link_scenario.iframe_time * 64,
    )
    source.start()
    start = time.perf_counter()
    setup.sim.run(until=duration)
    wall = time.perf_counter() - start
    events = setup.sim.event_count
    frames = setup.link.forward.frames_sent + setup.link.reverse.frames_sent
    return {
        "kind": "saturated_throughput",
        "engine": engine_backend(),
        "batch_window": _default_batch_window(),
        "scenario": scenario,
        "protocol": protocol,
        "sim_duration": duration,
        "seed": seed,
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else float("inf"),
        "frames": frames,
        "frames_per_sec": frames / wall if wall > 0 else float("inf"),
        "delivered": len(setup.delivered),
    }


def bench_sweep_scale(
    seeds: int = 16,
    duration: float = 0.05,
    scenario: str = "short_hop",
    protocol: str = "lams",
    jobs: tuple[int, ...] = (2, 4),
    chunksize: int = 0,
    force_parallel: bool = False,
) -> dict[str, Any]:
    """Macro-benchmark the replication plane: points/sec through
    :func:`~repro.experiments.parallel.run_sweep`.

    Runs the same *seeds*-point replicated sweep serially and over warm
    :class:`~repro.experiments.parallel.SweepPool` workers at each job
    count, asserting bit-identical results along the way, then measures
    a fully cache-hot re-run against a freshly opened sharded cache
    (the "1000 opens vs one index read" number, scaled down).

    On a single-core host the pool cells only measure oversubscription
    — workers time-slice one CPU, so "parallel" numbers look like
    regressions that aren't there.  The parallel cells are therefore
    skipped when ``os.cpu_count() <= 1`` (recorded under
    ``parallel_skipped``) unless *force_parallel* is set, in which case
    every cell is stamped ``forced_parallel: true`` so history readers
    can discount them.
    """
    import shutil
    import tempfile

    from .experiments.parallel import (
        MeasurePoint,
        MeasureSpec,
        ResultCache,
        SweepPool,
        replication_seeds,
        run_sweep,
    )
    from .workloads.scenarios import preset

    if seeds < 2:
        raise ValueError("at least two sweep points are required")
    spec = MeasureSpec.create(
        "measure_saturated", preset(scenario), protocol, duration=duration
    )
    points = [MeasurePoint(spec, s)
              for s in replication_seeds(0, seeds, name="bench_sweep")]

    def timed(fn) -> tuple[Any, float]:
        start = time.perf_counter()
        out = fn()
        return out, time.perf_counter() - start

    serial, serial_wall = timed(lambda: run_sweep(points, jobs=1))
    result: dict[str, Any] = {
        "kind": "sweep_scale",
        "scenario": scenario,
        "protocol": protocol,
        "sim_duration": duration,
        "points": len(points),
        "chunksize": chunksize,
        "serial": {
            "jobs": 1,
            "wall_seconds": serial_wall,
            "points_per_sec": len(points) / serial_wall if serial_wall > 0 else float("inf"),
        },
        "parallel": [],
    }
    single_core = (os.cpu_count() or 1) <= 1
    if single_core and not force_parallel:
        jobs = ()
        result["parallel_skipped"] = (
            "single-core host: pool cells would only measure oversubscription"
        )
    for job_count in jobs:
        with SweepPool(job_count) as pool:
            # Warm the workers first so the measurement sees the steady
            # state a long sweep runs in, not pool start-up.
            run_sweep(points[:job_count], pool=pool, chunksize=1)
            parallel, wall = timed(
                lambda: run_sweep(points, pool=pool, chunksize=chunksize)
            )
        cell = {
            "jobs": job_count,
            "start_method": pool.start_method,
            "wall_seconds": wall,
            "points_per_sec": len(points) / wall if wall > 0 else float("inf"),
            "bit_identical_to_serial": parallel == serial,
        }
        if single_core:
            cell["forced_parallel"] = True
        result["parallel"].append(cell)
    tmpdir = tempfile.mkdtemp(prefix="bench-sweep-cache-")
    try:
        with ResultCache(tmpdir) as cache:
            run_sweep(points, jobs=1, cache=cache)
        with ResultCache(tmpdir) as warm_cache:
            hot, hot_wall = timed(lambda: run_sweep(points, jobs=1, cache=warm_cache))
            result["cache_hot"] = {
                "wall_seconds": hot_wall,
                "points_per_sec": len(points) / hot_wall if hot_wall > 0 else float("inf"),
                "hits": warm_cache.hits,
                "bit_identical_to_serial": hot == serial,
            }
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return result


def bench_constellation_scale(
    link_counts: tuple[int, ...] = (10, 100, 1000),
    duration: float = 0.2,
    flow_count: int = 8,
    messages: int = 20,
    seed: int = 0,
) -> dict[str, Any]:
    """Constellation-benchmark: M concurrent LAMS-DLC links in one engine.

    For each entry in *link_counts*, builds a ring topology of that many
    links (one node per link) through
    :class:`~repro.topology.builder.ConstellationBuilder`, drives
    *flow_count* cross-traffic flows, and reports build time, run-phase
    events/sec, and the peak per-link state (buffered payloads across
    sender windows and resequencing queues) plus peak event-heap size —
    the numbers that bound how far one engine scales before per-link
    state or the shared heap becomes the limit.
    """
    from .topology import FlowSpec, build_constellation, ring_topology

    if duration <= 0:
        raise ValueError("duration must be positive")
    scales: list[dict[str, Any]] = []
    for links in link_counts:
        if links < 3:
            raise ValueError("ring topologies need at least 3 links")
        topo = ring_topology(links, name=f"bench-ring-{links}")
        names = topo.node_names()
        # Short fixed stride: flows stay a 2-hop relay regardless of
        # ring size, so every scale completes deliveries within the
        # horizon and the numbers compare like for like.
        stride = 2
        flows = [
            FlowSpec(
                source=names[(i * max(1, links // max(1, flow_count))) % links],
                destination=names[(i * max(1, links // max(1, flow_count))
                                   + stride) % links],
                messages=messages,
                interval=duration / max(1, 2 * messages),
                poisson=True,
            )
            for i in range(flow_count)
        ]
        build_start = time.perf_counter()
        constellation = build_constellation(
            topo, master_seed=seed, flows=flows, horizon=duration,
            probe_interval=duration / 20.0,
        )
        build_wall = time.perf_counter() - build_start
        run_start = time.perf_counter()
        constellation.run(until=duration)
        run_wall = time.perf_counter() - run_start
        rollup = constellation.network_rollup()
        scales.append({
            "links": links,
            "flows": flow_count,
            "sim_duration": duration,
            "build_wall_seconds": build_wall,
            "run_wall_seconds": run_wall,
            "events": rollup["events"],
            "events_per_sec": (rollup["events"] / run_wall
                               if run_wall > 0 else float("inf")),
            "datagrams_delivered": rollup["datagrams_delivered"],
            "peak_heap": rollup["peak_heap"],
            "peak_buffered_per_link": rollup["peak_buffered_max"],
        })
    return {
        "kind": "constellation_scale",
        "seed": seed,
        "scales": scales,
    }


def _git_commit() -> Optional[str]:
    """The current git HEAD, or None outside a repository."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def machine_stamp() -> dict[str, Any]:
    """Identity of the machine and code that produced a measurement."""
    return {
        "git_commit": _git_commit(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
    }


def run_hotpath_bench(
    repeats: int = 3,
    micro_events: int = 200_000,
    duration: float = 2.0,
    scenario: str = "nominal",
    protocol: str = "lams",
    seed: int = 1,
    sweep_seeds: int = 16,
    sweep_duration: float = 0.05,
    include_sweep_scale: bool = True,
    constellation_links: tuple[int, ...] = (10, 100, 1000),
    constellation_duration: float = 0.2,
    include_constellation_scale: bool = True,
    force_parallel: bool = False,
) -> dict[str, Any]:
    """Run micro + meso *repeats* times (plus one sweep-scale pass);
    report best-of plus all runs.

    Best-of is the right summary for a regression baseline: interfering
    load only ever makes a run slower, so the fastest repeat is the
    closest estimate of the code's true cost.  The sweep-scale macro
    runs once — it is internally replicated (many points per
    measurement) already.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    micro_runs = [
        bench_engine_dispatch(total_events=micro_events) for _ in range(repeats)
    ]
    meso_runs = [
        bench_saturated(
            scenario=scenario, protocol=protocol, duration=duration, seed=seed
        )
        for _ in range(repeats)
    ]
    best_micro = max(micro_runs, key=lambda run: run["events_per_sec"])
    best_meso = max(meso_runs, key=lambda run: run["events_per_sec"])
    payload = {
        "schema": "repro.bench_hotpath/3",
        "generated_unix_time": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Which dispatch loop and sender batching produced these numbers
        # — without the stamps, a backend or batch-window change reads
        # as a mystery regression/improvement in the history.
        "engine": engine_backend(),
        "batch_window": _default_batch_window(),
        "repeats": repeats,
        "engine_dispatch": {
            "events_per_sec": best_micro["events_per_sec"],
            "per_event_p50_us": best_micro["per_event_p50_us"],
            "per_event_p95_us": best_micro["per_event_p95_us"],
            "runs": micro_runs,
        },
        "saturated_throughput": {
            "events_per_sec": best_meso["events_per_sec"],
            "frames_per_sec": best_meso["frames_per_sec"],
            "delivered": best_meso["delivered"],
            "runs": meso_runs,
        },
    }
    payload.update(machine_stamp())
    if include_sweep_scale:
        payload["sweep_scale"] = bench_sweep_scale(
            seeds=sweep_seeds, duration=sweep_duration,
            force_parallel=force_parallel,
        )
    if include_constellation_scale:
        payload["constellation_scale"] = bench_constellation_scale(
            link_counts=constellation_links, duration=constellation_duration,
            seed=seed,
        )
    return payload


def append_history(
    payload: dict[str, Any], path: str = DEFAULT_HISTORY
) -> dict[str, Any]:
    """Append one compact trajectory record for *payload* to *path*.

    ``BENCH_history.jsonl`` keeps one line per baseline run — enough to
    plot the perf trajectory across commits without hauling the full
    per-run detail of every snapshot.
    """
    sweep = payload.get("sweep_scale") or {}
    parallel = {run.get("jobs"): run for run in sweep.get("parallel", ())}
    record = {
        "time": payload.get("generated_unix_time"),
        "git_commit": payload.get("git_commit"),
        "hostname": payload.get("hostname"),
        "cpu_count": payload.get("cpu_count"),
        "python": payload.get("python"),
        "engine": payload.get("engine"),
        "batch_window": payload.get("batch_window"),
        "engine_events_per_sec": payload.get(
            "engine_dispatch", {}).get("events_per_sec"),
        "saturated_events_per_sec": payload.get(
            "saturated_throughput", {}).get("events_per_sec"),
        "saturated_frames_per_sec": payload.get(
            "saturated_throughput", {}).get("frames_per_sec"),
        "sweep_points_per_sec_serial": sweep.get("serial", {}).get("points_per_sec"),
        "sweep_points_per_sec_jobs2": parallel.get(2, {}).get("points_per_sec"),
        "sweep_points_per_sec_jobs4": parallel.get(4, {}).get("points_per_sec"),
        "cache_hot_points_per_sec": sweep.get("cache_hot", {}).get("points_per_sec"),
    }
    constellation = payload.get("constellation_scale") or {}
    for scale in constellation.get("scales", ()):
        links = scale.get("links")
        record[f"constellation_events_per_sec_links{links}"] = scale.get(
            "events_per_sec")
        record[f"constellation_peak_buffered_links{links}"] = scale.get(
            "peak_buffered_per_link")
    with open(path, "a", encoding="utf-8") as handle:
        json.dump(record, handle)
        handle.write("\n")
    return record


def profile_hotpath_bench(
    top_n: int = 25,
    micro_events: int = 100_000,
    duration: float = 1.0,
    scenario: str = "nominal",
    protocol: str = "lams",
    seed: int = 1,
    sweep_seeds: int = 8,
    sweep_duration: float = 0.05,
    include_sweep_scale: bool = True,
    constellation_links: tuple[int, ...] = (10, 100),
    constellation_duration: float = 0.2,
    include_constellation_scale: bool = True,
    **_ignored: Any,
) -> dict[str, str]:
    """Run each bench kind once under cProfile; return per-kind reports.

    Each report is the top *top_n* functions by cumulative time —
    "where does the wall clock actually go" per regime, which is the
    question a regression surfaced by ``--compare`` immediately raises.
    Profiled runs are NOT valid baselines (instrumentation overhead is
    tens of percent), so nothing here writes ``BENCH_hotpath.json``.
    """
    import cProfile
    import io
    import pstats

    kinds: list[tuple[str, Any]] = [
        ("engine_dispatch",
         lambda: bench_engine_dispatch(total_events=micro_events)),
        ("saturated_throughput",
         lambda: bench_saturated(scenario=scenario, protocol=protocol,
                                 duration=duration, seed=seed)),
    ]
    if include_sweep_scale:
        kinds.append((
            "sweep_scale",
            lambda: bench_sweep_scale(seeds=sweep_seeds,
                                      duration=sweep_duration),
        ))
    if include_constellation_scale:
        kinds.append((
            "constellation_scale",
            lambda: bench_constellation_scale(
                link_counts=constellation_links,
                duration=constellation_duration, seed=seed),
        ))
    reports: dict[str, str] = {}
    for kind, bench in kinds:
        profiler = cProfile.Profile()
        profiler.enable()
        bench()
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(top_n)
        reports[kind] = stream.getvalue()
    return reports


def read_history(path: str = DEFAULT_HISTORY) -> list[dict[str, Any]]:
    """All records of a ``BENCH_history.jsonl`` trajectory, oldest first."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: corrupt history record ({error})"
                ) from None
    return records


def compare_last_two(
    path: str = DEFAULT_HISTORY, threshold: float = 0.10
) -> dict[str, Any]:
    """Diff the newest two history records' throughput metrics.

    Compares every ``*_per_sec`` metric present in both records (all
    are higher-is-better) and flags changes beyond *threshold* as a
    regression or improvement.  The result carries enough context —
    commits, engine backends, batch windows, CPU counts — to judge
    whether a delta is a code change or an apples-to-oranges pairing
    (different backend, different machine).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    records = read_history(path)
    if len(records) < 2:
        raise ValueError(
            f"{path} holds {len(records)} record(s); "
            "need at least two to compare"
        )
    old, new = records[-2], records[-1]
    rows: list[dict[str, Any]] = []
    for key in sorted(set(old) & set(new)):
        if not key.endswith("_per_sec"):
            continue
        before, after = old[key], new[key]
        if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
            continue
        if before <= 0:
            continue
        delta = (after - before) / before
        rows.append({
            "metric": key,
            "old": before,
            "new": after,
            "delta": delta,
            "regressed": delta <= -threshold,
            "improved": delta >= threshold,
        })
    caveats = []
    for field in ("engine", "batch_window", "hostname", "cpu_count", "python"):
        if old.get(field) != new.get(field):
            caveats.append(
                f"{field} changed: {old.get(field)!r} -> {new.get(field)!r}"
            )
    return {
        "old_commit": old.get("git_commit"),
        "new_commit": new.get("git_commit"),
        "threshold": threshold,
        "rows": rows,
        "regressions": [row for row in rows if row["regressed"]],
        "improvements": [row for row in rows if row["improved"]],
        "caveats": caveats,
    }


def write_baseline(
    path: str = DEFAULT_OUTPUT,
    payload: Optional[dict[str, Any]] = None,
    history_path: Optional[str] = DEFAULT_HISTORY,
    **bench_kwargs: Any,
) -> dict[str, Any]:
    """Run the hot-path bench (unless *payload* is given) and write it.

    The snapshot lands in *path*; a compact record is appended to
    *history_path* (pass ``None`` to skip the trajectory).
    """
    if payload is None:
        payload = run_hotpath_bench(**bench_kwargs)
    for field, value in machine_stamp().items():
        payload.setdefault(field, value)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    if history_path:
        append_history(payload, history_path)
    return payload

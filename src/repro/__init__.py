"""repro — reproduction of "The LAMS-DLC ARQ Protocol" (Ward & Choi, 1991).

A complete, executable reconstruction of the paper's system:

- :mod:`repro.core` — the LAMS-DLC protocol itself (NAK-only error
  control with periodic cumulative checkpoints, renumbered
  retransmissions, enforced recovery, Stop-Go flow control).
- :mod:`repro.hdlc` — the SR-HDLC baseline (plus Go-Back-N).
- :mod:`repro.simulator` — from-scratch discrete-event simulator:
  engine, links, error models (random + Gilbert–Elliott bursts), LEO
  orbital geometry.
- :mod:`repro.fec` — CRC, interleaving, codec residual-BER models.
- :mod:`repro.analysis` — every closed-form expression of the paper's
  Section 4.
- :mod:`repro.netlayer` — datagrams, store-and-forward routing, and the
  destination resequencer the relaxed in-sequence constraint requires.
- :mod:`repro.workloads` / :mod:`repro.experiments` — traffic models,
  canned scenarios, and the E1–E12 experiment registry regenerating the
  paper's evaluation.

Quickstart::

    from repro.workloads import preset, build_lams_simulation
    from repro.workloads.generators import FiniteBatch

    setup = build_lams_simulation(preset("nominal"), seed=1)
    FiniteBatch(setup.sim, setup.endpoint_a, count=1000).start()
    setup.run(until=5.0)
    assert len(setup.delivered) == 1000
"""

__version__ = "1.1.0"

__all__ = ["__version__"]

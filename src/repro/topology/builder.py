"""Materialise a :class:`~repro.topology.graph.Topology` into one engine.

The :class:`ConstellationBuilder` turns declarative specs into a running
:class:`Constellation`: every node becomes a store-and-forward
:class:`~repro.simulator.node.Node` with a
:class:`~repro.netlayer.ForwardingNetworkLayer` (BFS shortest-path
routes over the topology's adjacency), every
:class:`~repro.topology.spec.LinkSpec` becomes a live link plus a
started protocol endpoint pair, and every
:class:`~repro.topology.flows.FlowSpec` becomes a paced datagram flow —
all sharing ONE :class:`~repro.simulator.engine.Simulator`, which is
what makes M concurrent LAMS-DLC links one experiment instead of M.

Determinism contract: construction touches RNG state only through
per-link :class:`~repro.simulator.rng.StreamRegistry` instances (seeded
from the link spec / master seed) and a per-flow stream family, and the
builder instantiates nodes, then links (spec order, endpoint A started
before B), then flows — so two builds from equal topology + master seed
schedule an identical event sequence and two runs produce identical
rollups.  Perturbing one link (its fault plan, its traffic) cannot
shift another link's draws: stream isolation is per link name.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Sequence

from ..experiments.sweeps import StreamingSummary
from ..netlayer.datagram import DatagramService, DeliveryLog
from ..netlayer.forwarding import ForwardingNetworkLayer, shortest_path_routes
from ..simulator.engine import Simulator
from ..simulator.node import Node
from ..simulator.orbit import IsolatedLinkGeometry
from ..simulator.rng import StreamRegistry, derive_seed
from ..simulator.trace import Tracer
from .flows import FlowDriver, FlowSpec
from .graph import Topology
from .spec import LinkSpec, build_link, instantiate_pair
from .stats import LinkStats, network_rollup

__all__ = [
    "LinkRuntime",
    "Constellation",
    "ConstellationBuilder",
    "build_constellation",
]


class LinkRuntime:
    """One built link: spec, channel pair, endpoints, stats, monitors."""

    __slots__ = ("spec", "link", "endpoint_a", "endpoint_b", "stats",
                 "tracer", "monitors")

    def __init__(self, spec, link, endpoint_a, endpoint_b, stats,
                 tracer=None, monitors=None) -> None:
        self.spec = spec
        self.link = link
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        self.stats = stats
        self.tracer = tracer
        self.monitors = monitors

    def buffered_payloads(self) -> int:
        """Protocol payloads currently held at either end (sender
        buffers + receiver queues) — this link's live state footprint."""
        total = 0
        for endpoint in (self.endpoint_a, self.endpoint_b):
            sender = getattr(endpoint, "sender", None)
            if sender is not None:
                total += getattr(sender, "occupancy", 0)
            receiver = getattr(endpoint, "receiver", None)
            if receiver is not None and hasattr(receiver, "queued_payloads"):
                total += len(receiver.queued_payloads())
        return total

    def __repr__(self) -> str:
        return f"<LinkRuntime {self.spec.name} {self.spec.a}--{self.spec.b}>"


class Constellation:
    """A built, running multi-link simulation: the handle E24, the CLI,
    and the benchmark all drive."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        master_seed: int,
        nodes: Dict[str, Node],
        layers: Dict[str, ForwardingNetworkLayer],
        services: Dict[str, DatagramService],
        logs: Dict[str, DeliveryLog],
        links: Dict[str, LinkRuntime],
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.master_seed = master_seed
        self.nodes = nodes
        self.layers = layers
        self.services = services
        self.logs = logs
        self.links = links
        self.flows: List[FlowDriver] = []
        self.peak_heap = 0
        """High-water mark of the engine's event-queue width, when the
        builder's probe is armed — the engine-scaling axis."""

    # -- traffic ----------------------------------------------------------

    def add_flow(self, spec: FlowSpec, *, streams: Optional[StreamRegistry] = None,
                 horizon: Optional[float] = None) -> FlowDriver:
        """Attach one more flow (the builder uses this for the initial
        set; experiments can add load mid-design)."""
        if streams is None:
            streams = StreamRegistry(
                seed=derive_seed(self.master_seed, f"topology.flow.{spec.name}")
            )
        driver = FlowDriver(
            self.sim, spec, self.services[spec.source],
            streams=streams if spec.poisson else None, horizon=horizon,
        )
        self.flows.append(driver)
        return driver

    # -- execution ---------------------------------------------------------

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # -- accounting --------------------------------------------------------

    def link_summaries(self) -> List[Dict[str, Any]]:
        """Per-link snapshots, in topology declaration order."""
        now = self.sim.now
        return [
            self.links[spec.name].stats.summary(now)
            for spec in self.topology.links
        ]

    def end_to_end_delay(self) -> StreamingSummary:
        """All delivered datagrams' end-to-end delays, folded in node
        declaration order (deterministic across same-seed runs)."""
        stream = StreamingSummary("e2e_delay")
        for name in self.topology.node_names():
            for delay in self.logs[name].delays:
                stream.push(delay)
        return stream

    def datagrams_delivered(self) -> int:
        return sum(len(self.logs[name]) for name in self.topology.node_names())

    def datagrams_sent(self) -> int:
        return sum(driver.sent for driver in self.flows)

    def network_rollup(self) -> Dict[str, Any]:
        """The whole constellation in one plain dict: summed counters,
        merged per-link delay streams, end-to-end datagram stats, and
        engine-level scale numbers."""
        rollup = network_rollup(
            (self.links[spec.name].stats for spec in self.topology.links),
            now=self.sim.now,
            extra_streams={"e2e_delay": self.end_to_end_delay()},
        )
        rollup["datagrams_sent"] = self.datagrams_sent()
        rollup["datagrams_delivered"] = self.datagrams_delivered()
        rollup["forwarded"] = sum(
            self.layers[name].forwarded for name in self.topology.node_names()
        )
        rollup["retry_backlog"] = sum(
            self.layers[name].retry_backlog for name in self.topology.node_names()
        )
        rollup["events"] = self.sim.event_count
        rollup["peak_heap"] = self.peak_heap
        return rollup

    def finalize_monitors(self) -> List[Any]:
        """Run end-of-run checks on every armed per-link monitor suite;
        returns the suites (inspect ``.violations`` / ``.report()``)."""
        suites = []
        for spec in self.topology.links:
            runtime = self.links[spec.name]
            if runtime.monitors is not None:
                runtime.monitors.finalize(self.sim.now)
                suites.append(runtime.monitors)
        return suites

    # -- probes ------------------------------------------------------------

    def sample_state(self) -> None:
        """One probe tick: per-link buffered-payload peaks + heap width.

        Reads state only — scheduling it cannot perturb protocol
        behaviour, so probed and unprobed runs deliver identically.
        """
        heap_width = len(self.sim._heap)
        if heap_width > self.peak_heap:
            self.peak_heap = heap_width
        for spec in self.topology.links:
            runtime = self.links[spec.name]
            runtime.stats.observe_buffered(runtime.buffered_payloads())

    def __repr__(self) -> str:
        return (
            f"<Constellation {self.topology.name!r} nodes={len(self.nodes)} "
            f"links={len(self.links)} flows={len(self.flows)}>"
        )


class ConstellationBuilder:
    """Builds a :class:`Constellation` from a :class:`Topology`.

    Parameters
    ----------
    topology:
        The declarative graph to materialise.
    master_seed:
        Seeds every link (via ``LinkSpec.resolve_seed``) and every
        Poisson flow; the single knob a replication sweep varies.
    dynamic_routing:
        Give each network layer the full adjacency so a declared link
        failure triggers rerouting and payload reclamation (the
        zero-loss story); static routing records failures only.
    probe_interval:
        Seconds between state probes (per-link buffered-payload peaks,
        engine heap width); ``None`` disables probing.
    monitors:
        Arm the invariant suite on every LAMS link, overriding each
        spec's ``monitors`` flag.  Monitors assume one-way (A sends)
        link usage; on relay links carrying bidirectional transit
        traffic, expect ordering monitors to be uninformative.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        master_seed: int = 0,
        dynamic_routing: bool = False,
        retry_interval: float = 0.001,
        probe_interval: Optional[float] = None,
        monitors: Optional[bool] = None,
    ) -> None:
        self.topology = topology
        self.master_seed = master_seed
        self.dynamic_routing = dynamic_routing
        self.retry_interval = retry_interval
        self.probe_interval = probe_interval
        self.monitors = monitors

    def build(
        self,
        sim: Optional[Simulator] = None,
        flows: Sequence[FlowSpec] = (),
        horizon: Optional[float] = None,
    ) -> Constellation:
        """Instantiate everything on one engine; endpoints are started.

        *flows* are attached in order after all links exist; *horizon*
        bounds unbounded flows and the probe schedule.
        """
        sim = sim or Simulator()
        adjacency = self.topology.adjacency()

        # 1. Nodes: delivery log + forwarding layer + node, in
        #    declaration order (route tables are pure functions of the
        #    adjacency, so this order only fixes object identity).
        logs: Dict[str, DeliveryLog] = {}
        layers: Dict[str, ForwardingNetworkLayer] = {}
        nodes: Dict[str, Node] = {}
        for node_spec in self.topology.nodes:
            name = node_spec.name
            logs[name] = DeliveryLog(sim)
            layer = ForwardingNetworkLayer(
                sim, address=name,
                routes=shortest_path_routes(adjacency, name),
                deliver=logs[name],
                retry_interval=self.retry_interval,
                topology=adjacency if self.dynamic_routing else None,
            )
            node = Node(sim, name, network_layer=layer)
            layer.bind(node)
            nodes[name], layers[name] = node, layer

        # 2. Links, in declaration order: build channel, wire endpoints
        #    into the two nodes, start A then B.  This exact sequence is
        #    the determinism contract (and matches the hand-wired
        #    examples frame for frame).
        links: Dict[str, LinkRuntime] = {}
        for spec in self.topology.links:
            links[spec.name] = self._build_link(spec, sim, nodes)

        # 3. Services + flows.
        services = {
            name: DatagramService(sim, layers[name])
            for name in self.topology.node_names()
        }
        constellation = Constellation(
            sim, self.topology, master_seed=self.master_seed,
            nodes=nodes, layers=layers, services=services, logs=logs,
            links=links,
        )
        for flow in flows:
            constellation.add_flow(flow, horizon=horizon)

        # 4. State probe (read-only; cannot perturb protocol events).
        if self.probe_interval is not None:
            self._arm_probe(constellation, horizon)
        return constellation

    # -- internals ---------------------------------------------------------

    def _build_link(self, spec: LinkSpec, sim: Simulator,
                    nodes: Dict[str, Node]) -> LinkRuntime:
        monitored = self.monitors if self.monitors is not None else spec.monitors
        tracer = Tracer() if monitored else None
        node_a, node_b = nodes[spec.a], nodes[spec.b]
        sat_a = self.topology.node(spec.a).satellite
        sat_b = self.topology.node(spec.b).satellite
        geometry = (
            IsolatedLinkGeometry(sat_a, sat_b)
            if (sat_a is not None and sat_b is not None)
            else None
        )
        orbit_delay = geometry.delay_fn() if geometry is not None else None
        link = build_link(
            spec, sim, master_seed=self.master_seed, tracer=tracer,
            propagation_delay=orbit_delay, geometry=geometry,
        )
        stats = LinkStats(spec.name, link)

        def tap(node: Node, deliver, link_name: str = spec.name):
            def deliver_up(pkt: Any) -> None:
                created = getattr(pkt, "created_at", None)
                stats.record_delivery(
                    None if created is None else sim.now - created
                )
                if deliver is not None:
                    deliver(pkt)
                node.deliver_up(pkt, link_name)
            return deliver_up

        wired = spec.with_(
            endpoint_a=spec.endpoint_a.with_(
                deliver=tap(node_a, spec.endpoint_a.deliver),
                on_failure=spec.endpoint_a.on_failure
                or (lambda ln=spec.name: node_a.report_link_failure(ln)),
            ),
            endpoint_b=spec.endpoint_b.with_(
                deliver=tap(node_b, spec.endpoint_b.deliver),
                on_failure=spec.endpoint_b.on_failure
                or (lambda ln=spec.name: node_b.report_link_failure(ln)),
            ),
        ) if self._lams_family(spec) else spec.with_(
            endpoint_a=spec.endpoint_a.with_(
                deliver=tap(node_a, spec.endpoint_a.deliver)),
            endpoint_b=spec.endpoint_b.with_(
                deliver=tap(node_b, spec.endpoint_b.deliver)),
        )
        a, b = instantiate_pair(wired, sim, link, tracer=tracer)
        a.start(send=spec.endpoint_a.send, receive=spec.endpoint_a.receive)
        b.start(send=spec.endpoint_b.send, receive=spec.endpoint_b.receive)
        node_a.attach_endpoint(spec.name, a)
        node_b.attach_endpoint(spec.name, b)

        suite = None
        if monitored:
            # Lazy import: invariants sit above the topology layer.
            from ..invariants.harness import attach_monitors

            suite = attach_monitors(
                SimpleNamespace(sim=sim, tracer=tracer, endpoint_a=a, endpoint_b=b),
                wired.resolved_scenario(),
                fault_plan=spec.fault_plan,
                context={"topology": self.topology.name, "link": spec.name},
            )
        return LinkRuntime(spec, link, a, b, stats, tracer=tracer, monitors=suite)

    @staticmethod
    def _lams_family(spec: LinkSpec) -> bool:
        from ..core.endpoint import resolve_protocol

        return resolve_protocol(spec.protocol)[0] == "lams"

    def _arm_probe(self, constellation: Constellation,
                   horizon: Optional[float]) -> None:
        interval = self.probe_interval
        sim = constellation.sim

        def probe() -> None:
            constellation.sample_state()
            if horizon is None or sim.now + interval <= horizon:
                sim.schedule(interval, probe)

        sim.schedule(interval, probe)


def build_constellation(
    topology: Topology,
    *,
    sim: Optional[Simulator] = None,
    master_seed: int = 0,
    flows: Sequence[FlowSpec] = (),
    horizon: Optional[float] = None,
    **builder_kwargs: Any,
) -> Constellation:
    """One-call convenience: ``ConstellationBuilder(...).build(...)``."""
    builder = ConstellationBuilder(topology, master_seed=master_seed,
                                   **builder_kwargs)
    return builder.build(sim=sim, flows=flows, horizon=horizon)

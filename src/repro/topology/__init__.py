"""Constellation-scale topology layer.

Declarative multi-link simulation: describe a constellation as a
:class:`Topology` of :class:`NodeSpec` nodes and :class:`LinkSpec`
links, hand it to a :class:`ConstellationBuilder`, and run N satellites
with M concurrent LAMS-DLC links — relay forwarding, aggregate flows,
per-link and network-wide statistics — inside ONE simulator engine.

Quick tour (see docs/TOPOLOGY.md for the full story)::

    from repro.topology import LinkSpec, build_constellation, ring_topology
    from repro.topology import cross_traffic

    topo = ring_topology(6, LinkSpec(scenario="nominal"))
    constellation = build_constellation(
        topo, master_seed=7,
        flows=cross_traffic(topo.node_names(), stride=2, messages=50),
        horizon=5.0,
    )
    constellation.run(until=5.0)
    print(constellation.network_rollup())

The spec layer (:class:`LinkSpec` / :class:`EndpointSpec`,
:func:`build_link`, :func:`instantiate_pair`) is also the construction
path behind :func:`repro.api.make_endpoint_pair` — a two-node topology
is just the degenerate case.
"""

from .builder import (
    Constellation,
    ConstellationBuilder,
    LinkRuntime,
    build_constellation,
)
from .flows import FlowDriver, FlowSpec, cross_traffic
from .graph import (
    NodeSpec,
    Topology,
    chain_topology,
    grid_topology,
    ring_topology,
)
from .spec import EndpointSpec, LinkSpec, build_link, instantiate_pair
from .stats import LinkStats, network_rollup

__all__ = [
    "Constellation",
    "ConstellationBuilder",
    "EndpointSpec",
    "FlowDriver",
    "FlowSpec",
    "LinkRuntime",
    "LinkSpec",
    "LinkStats",
    "NodeSpec",
    "Topology",
    "build_constellation",
    "build_link",
    "chain_topology",
    "cross_traffic",
    "grid_topology",
    "instantiate_pair",
    "network_rollup",
    "ring_topology",
]

"""Declarative construction specs: one link, fully described.

This module is the heart of the spec-based construction path the rest
of the library builds on.  Today's endpoint construction funnels a long
kwargs list through :func:`repro.api.make_endpoint_pair` — protocol,
configs, delivery callbacks, error models, fault plan — and every layer
that wants "a LAMS-DLC link" (experiments, session manager, examples)
re-plumbs the same arguments.  A :class:`LinkSpec` bundles that whole
operating point into one value:

- the **physics** — a :class:`~repro.workloads.scenarios.LinkScenario`
  (or preset name) supplying rate / delay / BERs, with optional
  explicit ``bit_rate`` / ``propagation_delay`` overrides (the latter
  accepts a callable for orbit-driven time-varying delay);
- the **protocol** — any :func:`repro.api.available_protocols` name
  plus config overrides, or a ready config dataclass;
- the **per-side wiring** — an :class:`EndpointSpec` per endpoint
  (delivery callback, failure callback, which halves to start);
- the **impairments** — error-model specs per frame class and an
  optional :class:`~repro.faults.plan.FaultPlan`;
- the **randomness** — an explicit per-link ``seed``, or one derived
  from a topology master seed and the link name.

Specs are plain dataclasses: build one, ``with_()`` variants of it, put
it in a :class:`~repro.topology.graph.Topology`, or hand it straight to
:func:`build_link` / :func:`instantiate_pair`.  The legacy facade
(:func:`repro.api.make_endpoint_pair`, :func:`repro.api.build_simulation`)
is a thin wrapper over exactly these two functions, so both paths stay
behaviourally identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Union

from ..core.endpoint import EndpointPair, build_endpoint_pair, resolve_protocol
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..simulator.engine import Simulator
from ..simulator.errormodel import (
    ErrorModelSpec,
    resolve_error_model,
    resolve_link_error_models,
)
from ..simulator.link import DelaySpec, FullDuplexLink
from ..simulator.rng import StreamRegistry, derive_seed
from ..simulator.trace import Tracer

__all__ = [
    "EndpointSpec",
    "LinkSpec",
    "build_link",
    "instantiate_pair",
]


@dataclass(frozen=True)
class EndpointSpec:
    """One side of a link: the endpoint-local construction choices.

    Everything here is optional; the zero-argument spec describes the
    default endpoint (config derived from the link's scenario, no
    delivery callback, both halves started).
    """

    config: Any = None
    """Protocol config dataclass for this side; ``None`` derives it from
    the link's scenario (plus the :class:`LinkSpec` overrides)."""

    deliver: Optional[Callable[[Any], None]] = None
    """Callback for payloads delivered upward by this endpoint."""

    on_failure: Optional[Callable[[], None]] = None
    """Callback when this side declares the link failed (LAMS family)."""

    send: bool = True
    receive: bool = True
    """Which halves :meth:`~repro.core.endpoint.Endpoint.start` brings
    up when a builder starts the endpoint (one-way experiments leave
    the unused halves down so they see no reverse-direction chatter)."""

    def with_(self, **changes: Any) -> "EndpointSpec":
        """A copy with fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class LinkSpec:
    """A complete declarative description of one LAMS-DLC (or baseline
    protocol) link: physics, protocol, wiring, impairments, randomness.

    In a :class:`~repro.topology.graph.Topology`, ``a`` and ``b`` name
    the nodes the link joins; standalone uses can ignore them.
    """

    name: str = "link"
    a: str = "A"
    b: str = "B"
    protocol: str = "lams"
    scenario: Union["Any", str, None] = None
    """A :class:`~repro.workloads.scenarios.LinkScenario`, a preset name
    (``"nominal"``, ...), or ``None`` for the nominal preset."""

    overrides: Optional[Mapping[str, Any]] = None
    """Protocol-config overrides applied when the config is derived
    from the scenario (ignored for explicit ``config``/endpoint
    configs)."""

    config: Any = None
    """Shared explicit protocol config for both sides; per-side
    ``EndpointSpec.config`` wins over it."""

    endpoint_a: EndpointSpec = field(default_factory=EndpointSpec)
    endpoint_b: EndpointSpec = field(default_factory=EndpointSpec)

    bit_rate: Optional[float] = None
    propagation_delay: Optional[DelaySpec] = None
    """Explicit physics overrides; ``None`` takes the scenario's rate /
    one-way delay.  ``propagation_delay`` accepts a callable ``t ->
    seconds`` (orbit-driven links)."""

    iframe_errors: ErrorModelSpec = None
    cframe_errors: ErrorModelSpec = None
    reverse_iframe_errors: ErrorModelSpec = None
    reverse_cframe_errors: ErrorModelSpec = None
    error_model: ErrorModelSpec = None
    """``error_model`` is the data-plane shorthand: equivalent to
    ``iframe_errors`` (mirrors :func:`repro.api.build_simulation`).
    The ``reverse_*`` specs override the feedback direction only
    (checkpoints/NAKs travelling receiver -> sender) and default to the
    scenario's reverse fields, then to mirroring the forward direction.
    Prefer registry-style specs (name / ``(name, kwargs)`` / mapping)
    over instances when one ``LinkSpec`` stamps out many links —
    models are stateful, so each link must get a fresh instance."""

    fault_plan: Optional[FaultPlan] = None
    seed: Optional[int] = None
    """Per-link RNG seed; ``None`` derives one from the builder's
    master seed and the link name (`derive_seed(master, name)`)."""

    monitors: bool = False
    """Arm the :mod:`repro.invariants` suite on this link (LAMS family,
    one-way traffic semantics; see docs/TOPOLOGY.md)."""

    extras: Mapping[str, Any] = field(default_factory=dict)
    """Family-specific factory keywords (e.g. LAMS-DLC's
    ``delivery_interval_b``), passed through verbatim."""

    def __post_init__(self) -> None:
        if self.error_model is not None and self.iframe_errors is not None:
            raise ValueError("pass error_model or iframe_errors, not both")
        if self.a == self.b:
            raise ValueError(f"link {self.name!r} cannot join {self.a!r} to itself")

    def with_(self, **changes: Any) -> "LinkSpec":
        """A copy with fields replaced (topology-template helper)."""
        return replace(self, **changes)

    # -- resolution helpers ----------------------------------------------

    def resolved_scenario(self):
        """The live :class:`LinkScenario` (presets looked up by name)."""
        from ..workloads.scenarios import LinkScenario, preset

        if self.scenario is None:
            return preset("nominal")
        if isinstance(self.scenario, str):
            return preset(self.scenario)
        if not isinstance(self.scenario, LinkScenario):
            raise TypeError(
                f"scenario must be a LinkScenario or preset name, "
                f"got {type(self.scenario).__name__}"
            )
        return self.scenario

    def resolve_seed(self, master_seed: int = 0) -> int:
        """This link's RNG seed under *master_seed*.

        An explicit ``seed`` wins; otherwise the seed is derived from
        the master seed and the link *name*, which is what gives every
        link in a constellation its own independent stream family —
        perturbing one link's consumption (or fault plan) cannot shift
        another link's draws.
        """
        if self.seed is not None:
            return self.seed
        return derive_seed(master_seed, f"topology.link.{self.name}")

    def protocol_config(self, side: str = "a") -> Any:
        """The resolved protocol config for side ``"a"`` or ``"b"``."""
        endpoint = self.endpoint_a if side == "a" else self.endpoint_b
        if endpoint.config is not None:
            return endpoint.config
        if self.config is not None:
            return self.config
        return self.resolved_scenario().protocol_config(
            self.protocol, **dict(self.overrides or {})
        )

    def other(self, node: str) -> str:
        """The far-end node name as seen from *node*."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node!r} is not an end of link {self.name!r}")


def build_link(
    spec: LinkSpec,
    sim: Simulator,
    *,
    master_seed: int = 0,
    tracer: Optional[Tracer] = None,
    propagation_delay: Optional[DelaySpec] = None,
    geometry: Optional[Any] = None,
) -> FullDuplexLink:
    """Materialise *spec*'s physical link on *sim*.

    *propagation_delay* is a builder-supplied default (e.g. the orbit
    geometry's ``delay_fn`` between two satellite nodes); the spec's own
    explicit ``propagation_delay`` still wins over it.  *geometry* is
    the link's :class:`~repro.simulator.orbit.IsolatedLinkGeometry`
    when both endpoints carry satellites; it is offered to the error-
    model factories via the registry context, so geometry-aware models
    (``"orbit-coupled"``) pick up the link's own orbit for free.
    """
    scenario = spec.resolved_scenario()
    bit_rate = spec.bit_rate if spec.bit_rate is not None else scenario.bit_rate
    if spec.propagation_delay is not None:
        delay: DelaySpec = spec.propagation_delay
    elif propagation_delay is not None:
        delay = propagation_delay
    else:
        delay = scenario.one_way_delay
    iframe_spec = (
        spec.error_model
        if spec.error_model is not None
        else (spec.iframe_errors
              if spec.iframe_errors is not None
              else scenario.iframe_error_model)
    )
    cframe_spec = (
        spec.cframe_errors
        if spec.cframe_errors is not None
        else scenario.cframe_error_model
    )
    reverse_iframe_spec = (
        spec.reverse_iframe_errors
        if spec.reverse_iframe_errors is not None
        else scenario.reverse_iframe_error_model
    )
    reverse_cframe_spec = (
        spec.reverse_cframe_errors
        if spec.reverse_cframe_errors is not None
        else scenario.reverse_cframe_error_model
    )
    models = resolve_link_error_models(
        iframe=iframe_spec,
        cframe=cframe_spec,
        reverse_iframe=reverse_iframe_spec,
        reverse_cframe=reverse_cframe_spec,
        iframe_ber=scenario.iframe_ber,
        cframe_ber=scenario.cframe_ber,
        reverse_iframe_ber=scenario.reverse_iframe_ber,
        reverse_cframe_ber=scenario.reverse_cframe_ber,
        bit_rate=bit_rate,
        context={"geometry": geometry} if geometry is not None else None,
    )
    return FullDuplexLink(
        sim,
        bit_rate=bit_rate,
        propagation_delay=delay,
        name=spec.name,
        iframe_errors=models[0],
        cframe_errors=models[1],
        reverse_iframe_errors=models[2],
        reverse_cframe_errors=models[3],
        streams=StreamRegistry(seed=spec.resolve_seed(master_seed)),
        tracer=tracer,
    )


def instantiate_pair(
    spec: LinkSpec,
    sim: Simulator,
    link: FullDuplexLink,
    *,
    tracer: Optional[Tracer] = None,
    apply_error_model: bool = False,
) -> EndpointPair:
    """Build *spec*'s wired (not started) endpoint pair over *link*.

    This is the single construction path every facade reduces to:
    :func:`repro.api.make_endpoint_pair` wraps its kwargs into a
    :class:`LinkSpec` and calls this;
    :class:`~repro.topology.builder.ConstellationBuilder` calls it once
    per topology link.

    With ``apply_error_model=True`` the spec's ``error_model`` replaces
    the I-frame error process of *both* link directions first — the
    behaviour of the legacy ``make_endpoint_pair(error_model=...)``
    kwarg on an externally built link.  Links built by
    :func:`build_link` already have the model folded in, so builders
    leave this off.
    """
    if apply_error_model and spec.error_model is not None:
        for channel in (link.forward, link.reverse):
            channel.iframe_errors = resolve_error_model(
                spec.error_model, bit_rate=channel.bit_rate
            )
    config = spec.protocol_config("a")
    config_b = spec.endpoint_b.config
    extras = dict(spec.extras)
    family, _ = resolve_protocol(spec.protocol)
    if family == "lams":
        # Failure callbacks are a LAMS-family factory feature; other
        # families would reject the keywords.
        if spec.endpoint_a.on_failure is not None:
            extras.setdefault("on_failure_a", spec.endpoint_a.on_failure)
        if spec.endpoint_b.on_failure is not None:
            extras.setdefault("on_failure_b", spec.endpoint_b.on_failure)
    elif spec.endpoint_a.on_failure is not None or spec.endpoint_b.on_failure is not None:
        raise ValueError(
            f"on_failure callbacks require a LAMS-family protocol, "
            f"not {spec.protocol!r}"
        )
    pair = build_endpoint_pair(
        spec.protocol, sim, link, config,
        config_b=config_b, tracer=tracer,
        deliver_a=spec.endpoint_a.deliver,
        deliver_b=spec.endpoint_b.deliver,
        **extras,
    )
    if spec.fault_plan is not None and len(spec.fault_plan):
        # The simulator's event heap keeps the injector alive.
        FaultInjector(sim, link, spec.fault_plan, tracer=tracer)
    return pair


def spec_from_kwargs(
    protocol: str,
    config: Any,
    *,
    config_b: Any = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
    error_model: ErrorModelSpec = None,
    fault_plan: Optional[FaultPlan] = None,
    **extras: Any,
) -> LinkSpec:
    """The legacy ``make_endpoint_pair`` kwargs list as a :class:`LinkSpec`.

    Pulled out so the facade shim and its tests share one translation.
    ``on_failure_a`` / ``on_failure_b`` migrate onto the endpoint specs;
    every other extra passes through.
    """
    endpoint_a = EndpointSpec(
        config=config, deliver=deliver_a,
        on_failure=extras.pop("on_failure_a", None),
    )
    endpoint_b = EndpointSpec(
        config=config_b, deliver=deliver_b,
        on_failure=extras.pop("on_failure_b", None),
    )
    return LinkSpec(
        protocol=protocol,
        endpoint_a=endpoint_a,
        endpoint_b=endpoint_b,
        error_model=error_model,
        fault_plan=fault_plan,
        extras=extras,
    )


def as_dict(spec: LinkSpec) -> dict[str, Any]:
    """A JSON-ish summary of *spec* (callbacks elided) for reports."""
    scenario = spec.resolved_scenario()
    return {
        "name": spec.name,
        "a": spec.a,
        "b": spec.b,
        "protocol": spec.protocol,
        "scenario": scenario.name,
        "bit_rate": spec.bit_rate if spec.bit_rate is not None else scenario.bit_rate,
        "seed": spec.seed,
        "fault_plan": spec.fault_plan.to_dict() if spec.fault_plan else None,
        "monitors": spec.monitors,
    }

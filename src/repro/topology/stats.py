"""Per-link and network-wide constellation statistics.

One :class:`LinkStats` tracks a single link: the channel counters both
simplex directions already maintain (frames sent / corrupted / lost to
outage, busy time) plus constant-memory
:class:`~repro.experiments.sweeps.StreamingSummary` streams of delivery
delay and payload size, fed by the builder's delivery taps.

:func:`network_rollup` folds every link into one network-wide view:
scalar counters are summed exactly; the delay/size streams merge via
the Chan et al. moment combination — mathematically exact, so the
rollup mean/stdev equal the statistics of all per-link samples pooled
(to within float rounding; see the hypothesis test in
``tests/test_topology_stats.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

from ..experiments.sweeps import StreamingSummary
from ..simulator.link import FullDuplexLink

__all__ = [
    "LinkStats",
    "network_rollup",
]

# The scalar counters every rollup sums across links.
_COUNTERS = (
    "frames_sent",
    "frames_corrupted",
    "frames_lost_outage",
    "payloads_delivered",
)


class LinkStats:
    """Statistics for one constellation link.

    ``record_delivery`` is the tap the builder splices into each
    endpoint's delivery path: it counts payloads and streams their
    link-level latency (send-to-deliver) when the payload timestamps
    are known.  Channel-level counters are read live off the link.
    """

    __slots__ = ("name", "link", "payloads_delivered", "delay", "peak_buffered")

    def __init__(self, name: str, link: FullDuplexLink) -> None:
        self.name = name
        self.link = link
        self.payloads_delivered = 0
        self.delay = StreamingSummary("delivery_delay")
        self.peak_buffered = 0
        """High-water mark of protocol payloads buffered at either
        endpoint (per-link state, the scaling axis of Ghaderi &
        Towsley's per-connection-memory question).  Maintained by the
        builder's periodic probe."""

    def record_delivery(self, delay: Optional[float] = None) -> None:
        self.payloads_delivered += 1
        if delay is not None:
            self.delay.push(delay)

    def observe_buffered(self, buffered: int) -> None:
        if buffered > self.peak_buffered:
            self.peak_buffered = buffered

    # -- channel-derived ---------------------------------------------------

    @property
    def frames_sent(self) -> int:
        return self.link.forward.frames_sent + self.link.reverse.frames_sent

    @property
    def frames_corrupted(self) -> int:
        return self.link.forward.frames_corrupted + self.link.reverse.frames_corrupted

    @property
    def frames_lost_outage(self) -> int:
        return (
            self.link.forward.frames_lost_outage
            + self.link.reverse.frames_lost_outage
        )

    def utilization(self, now: Optional[float] = None) -> float:
        """Mean of the two directions' serialisation utilizations."""
        return 0.5 * (
            self.link.forward.utilization(now) + self.link.reverse.utilization(now)
        )

    def summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        """A plain-data snapshot (deterministic across same-seed runs)."""
        return {
            "name": self.name,
            "frames_sent": self.frames_sent,
            "frames_corrupted": self.frames_corrupted,
            "frames_lost_outage": self.frames_lost_outage,
            "payloads_delivered": self.payloads_delivered,
            "peak_buffered": self.peak_buffered,
            "utilization": self.utilization(now),
            "delay_count": self.delay.count,
            "delay_mean": self.delay.mean,
            "delay_stdev": self.delay.stdev,
        }


def network_rollup(
    links: Iterable[LinkStats],
    now: Optional[float] = None,
    extra_streams: Optional[Mapping[str, StreamingSummary]] = None,
) -> Dict[str, Any]:
    """The whole constellation in one dict.

    Counters sum exactly; per-link delay streams merge into a single
    network stream (Chan et al., exact moments).  *extra_streams* lets
    callers fold in network-level series (end-to-end datagram delay)
    alongside the link-level rollup.
    """
    stats = list(links)
    totals: Dict[str, Any] = {counter: 0 for counter in _COUNTERS}
    totals["links"] = len(stats)
    totals["peak_buffered_max"] = 0
    delay = StreamingSummary("delivery_delay")
    utilizations = StreamingSummary("utilization")
    for link in stats:
        for counter in _COUNTERS:
            totals[counter] += getattr(link, counter)
        if link.peak_buffered > totals["peak_buffered_max"]:
            totals["peak_buffered_max"] = link.peak_buffered
        delay.merge(link.delay)
        utilizations.push(link.utilization(now))
    totals["delay_count"] = delay.count
    totals["delay_mean"] = delay.mean
    totals["delay_stdev"] = delay.stdev
    totals["utilization_mean"] = utilizations.mean
    for name, stream in (extra_streams or {}).items():
        totals[f"{name}_count"] = stream.count
        totals[f"{name}_mean"] = stream.mean
        totals[f"{name}_stdev"] = stream.stdev
    return totals

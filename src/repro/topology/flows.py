"""Multi-flow workloads over a constellation.

A :class:`FlowSpec` describes one end-to-end datagram flow — source,
destination, message count, pacing — and :class:`FlowDriver` schedules
it on a built constellation's :class:`~repro.netlayer.DatagramService`.
Pacing is either fixed-interval or Poisson; Poisson inter-arrival draws
come from a per-flow RNG stream (named after the flow) off the
constellation's master seed, so adding or perturbing one flow never
shifts another flow's arrival times — the same stream-isolation
discipline the links use.

:func:`cross_traffic` generates the background load an experiment
spreads across a topology: every node pairs with the node
``stride`` positions around the node list, which on a ring sends each
flow through relays (multi-hop) rather than to a direct neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Optional

from ..simulator.engine import Simulator
from ..simulator.rng import StreamRegistry

__all__ = [
    "FlowSpec",
    "FlowDriver",
    "cross_traffic",
]


@dataclass(frozen=True)
class FlowSpec:
    """One end-to-end datagram flow through the constellation."""

    source: str
    destination: str
    messages: int = 100
    """Total datagrams to send; 0 means "until the run ends" (paced
    flows only — the driver keeps scheduling until the horizon)."""

    interval: float = 1e-3
    """Mean inter-send interval in seconds."""

    start: float = 0.0
    poisson: bool = False
    """Exponential inter-arrivals at rate ``1/interval`` instead of a
    fixed clock — background cross-traffic's natural shape."""

    size_bits: Optional[int] = None
    name: str = ""
    """Stream/identity name; empty derives ``flow.{source}->{destination}``."""

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("a flow cannot target its own source")
        if self.interval <= 0:
            raise ValueError("flow interval must be positive")
        if self.messages < 0:
            raise ValueError("message count cannot be negative")
        if not self.name:
            object.__setattr__(
                self, "name", f"flow.{self.source}->{self.destination}"
            )

    def with_(self, **changes: Any) -> "FlowSpec":
        return replace(self, **changes)


class FlowDriver:
    """Schedules one :class:`FlowSpec` on a datagram service.

    The driver sends the first datagram at ``spec.start`` and paces the
    rest by ``spec.interval`` (fixed or exponential).  ``sent`` and
    ``sequences`` let delivery accounting correlate with the far-end
    :class:`~repro.netlayer.DeliveryLog`.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: FlowSpec,
        service,
        *,
        streams: Optional[StreamRegistry] = None,
        horizon: Optional[float] = None,
    ) -> None:
        if spec.messages == 0 and horizon is None:
            raise ValueError("an unbounded flow needs a horizon")
        self.sim = sim
        self.spec = spec
        self.service = service
        self.horizon = horizon
        self.sent = 0
        self._rng = (
            streams.get(spec.name) if (streams is not None and spec.poisson) else None
        )
        if spec.poisson and self._rng is None:
            raise ValueError("a Poisson flow needs a stream registry")
        sim.schedule_at(spec.start, self._send_next)

    def _interval(self) -> float:
        if self._rng is not None:
            return float(self._rng.exponential(self.spec.interval))
        return self.spec.interval

    def _send_next(self) -> None:
        if self.horizon is not None and self.sim.now > self.horizon:
            return
        self.service.send(
            self.spec.destination,
            data=(self.spec.name, self.sent),
            size_bits=self.spec.size_bits,
        )
        self.sent += 1
        if self.spec.messages and self.sent >= self.spec.messages:
            return
        self.sim.schedule(self._interval(), self._send_next)

    @property
    def done(self) -> bool:
        return bool(self.spec.messages) and self.sent >= self.spec.messages


def cross_traffic(
    nodes: Iterable[str],
    *,
    stride: int = 2,
    messages: int = 50,
    interval: float = 2e-3,
    poisson: bool = True,
    start: float = 0.0,
    stagger: float = 0.0,
) -> list[FlowSpec]:
    """Background flows: each node sends to the node *stride* ahead.

    On a ring, ``stride >= 2`` forces every flow through at least one
    relay, loading the store-and-forward path.  *stagger* offsets each
    successive flow's start so the load ramps instead of stampeding at
    ``t = start``.
    """
    names = list(nodes)
    if stride % len(names) == 0:
        raise ValueError("stride must not map a node onto itself")
    return [
        FlowSpec(
            source=name,
            destination=names[(i + stride) % len(names)],
            messages=messages,
            interval=interval,
            poisson=poisson,
            start=start + i * stagger,
        )
        for i, name in enumerate(names)
    ]

"""Declarative multi-link topologies: nodes, links, presets.

A :class:`Topology` is pure data — node specs plus
:class:`~repro.topology.spec.LinkSpec` values — with no simulator
attached.  The :class:`~repro.topology.builder.ConstellationBuilder`
materialises one into a running constellation; everything here can be
constructed, inspected, and serialised without touching an engine.

Nodes come in two flavours:

- **explicit** nodes (:class:`NodeSpec` with no satellite) — fixed
  stations, test fixtures, anything whose link physics the
  :class:`LinkSpec` states directly;
- **satellite** nodes (:class:`NodeSpec` wrapping a
  :class:`~repro.simulator.orbit.Satellite`) — when *both* ends of a
  link are satellites and the spec doesn't pin the delay, the builder
  derives a time-varying propagation delay from the orbital geometry.

Presets cover the shapes the paper's environment implies: a ``ring``
(one orbital plane, each satellite linked to its neighbours), a
``chain`` (a store-and-forward relay path), and a ``grid`` (several
planes with intra-plane and cross-plane ISLs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Iterator, Optional, Sequence

from ..simulator.orbit import Satellite
from .spec import LinkSpec

__all__ = [
    "NodeSpec",
    "Topology",
    "ring_topology",
    "chain_topology",
    "grid_topology",
]


@dataclass(frozen=True)
class NodeSpec:
    """One node of a topology: a name, optionally pinned to an orbit."""

    name: str
    satellite: Optional[Satellite] = None
    """Orbital geometry for this node; links between two satellite
    nodes inherit a time-varying delay unless their spec pins one."""

    def with_(self, **changes: Any) -> "NodeSpec":
        return replace(self, **changes)


@dataclass(frozen=True)
class Topology:
    """An immutable node/link graph of :class:`LinkSpec` edges."""

    name: str = "topology"
    nodes: tuple[NodeSpec, ...] = ()
    links: tuple[LinkSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self._coerce_nodes(self.nodes)))
        object.__setattr__(self, "links", tuple(self.links))
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate node name(s): {dupes}")
        link_names = [link.name for link in self.links]
        if len(set(link_names)) != len(link_names):
            dupes = sorted({n for n in link_names if link_names.count(n) > 1})
            raise ValueError(f"duplicate link name(s): {dupes}")
        known = set(names)
        for link in self.links:
            for end in (link.a, link.b):
                if end not in known:
                    raise ValueError(
                        f"link {link.name!r} references unknown node {end!r}"
                    )

    @staticmethod
    def _coerce_nodes(nodes: Iterable[Any]) -> Iterator[NodeSpec]:
        for node in nodes:
            if isinstance(node, NodeSpec):
                yield node
            elif isinstance(node, Satellite):
                yield NodeSpec(name=node.name, satellite=node)
            elif isinstance(node, str):
                yield NodeSpec(name=node)
            else:
                raise TypeError(
                    f"node must be a NodeSpec, Satellite, or name, got {node!r}"
                )

    # -- queries ----------------------------------------------------------

    def node(self, name: str) -> NodeSpec:
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no node named {name!r} in topology {self.name!r}")

    def link(self, name: str) -> LinkSpec:
        for candidate in self.links:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no link named {name!r} in topology {self.name!r}")

    def node_names(self) -> list[str]:
        return [node.name for node in self.nodes]

    def adjacency(self) -> dict[str, dict[str, str]]:
        """``{node: {neighbour: link_name}}`` — the exact shape
        :func:`repro.netlayer.shortest_path_routes` consumes."""
        adj: dict[str, dict[str, str]] = {node.name: {} for node in self.nodes}
        for link in self.links:
            adj[link.a][link.b] = link.name
            adj[link.b][link.a] = link.name
        return adj

    def degree(self, name: str) -> int:
        return len(self.adjacency()[name])

    def links_at(self, name: str) -> list[LinkSpec]:
        """The links incident to node *name*, in declaration order."""
        self.node(name)
        return [link for link in self.links if name in (link.a, link.b)]

    # -- construction helpers --------------------------------------------

    def with_(self, **changes: Any) -> "Topology":
        return replace(self, **changes)

    def map_links(self, transform) -> "Topology":
        """A copy with every link replaced by ``transform(link)`` —
        the bulk-reconfiguration hook (e.g. swap every link's scenario
        or arm monitors everywhere)."""
        return replace(self, links=tuple(transform(link) for link in self.links))

    def describe(self) -> dict[str, Any]:
        """JSON-ish structural summary (for reports and the CLI)."""
        from .spec import as_dict

        return {
            "name": self.name,
            "nodes": [
                {"name": node.name, "satellite": node.satellite is not None}
                for node in self.nodes
            ],
            "links": [as_dict(link) for link in self.links],
        }


def _expand_template(template: LinkSpec, *, name: str, a: str, b: str) -> LinkSpec:
    return template.with_(name=name, a=a, b=b)


def _ring_satellites(
    count: int,
    altitude_km: float,
    inclination_deg: float,
    raan_deg: float = 0.0,
    prefix: str = "sat",
) -> list[Satellite]:
    return [
        Satellite(
            name=f"{prefix}{i}",
            altitude_km=altitude_km,
            inclination_deg=inclination_deg,
            raan_deg=raan_deg,
            phase_deg=360.0 * i / count,
        )
        for i in range(count)
    ]


def ring_topology(
    size: int,
    link: Optional[LinkSpec] = None,
    *,
    name: str = "ring",
    satellites: bool = False,
    altitude_km: float = 1000.0,
    inclination_deg: float = 60.0,
) -> Topology:
    """One orbital plane: ``n0—n1—…—n(size-1)—n0``.

    *link* is the per-edge template; its ``name``/``a``/``b`` are
    rewritten per edge (``l0`` joins ``n0``/``n1``, …).  With
    ``satellites=True`` the nodes are spaced evenly around a circular
    orbit and inter-satellite delays can come from the geometry.
    """
    if size < 3:
        raise ValueError("a ring needs at least 3 nodes")
    template = link or LinkSpec()
    if satellites:
        nodes: Sequence[Any] = _ring_satellites(
            size, altitude_km, inclination_deg, prefix="n"
        )
    else:
        nodes = [f"n{i}" for i in range(size)]
    links = [
        _expand_template(template, name=f"l{i}", a=f"n{i}", b=f"n{(i + 1) % size}")
        for i in range(size)
    ]
    return Topology(name=name, nodes=tuple(nodes), links=tuple(links))


def chain_topology(
    hops: int,
    link: Optional[LinkSpec] = None,
    *,
    name: str = "chain",
) -> Topology:
    """A relay path ``n0—n1—…—n(hops)`` with *hops* links — the
    store-and-forward pipeline shape."""
    if hops < 1:
        raise ValueError("a chain needs at least 1 hop")
    template = link or LinkSpec()
    nodes = [f"n{i}" for i in range(hops + 1)]
    links = [
        _expand_template(template, name=f"l{i}", a=f"n{i}", b=f"n{i + 1}")
        for i in range(hops)
    ]
    return Topology(name=name, nodes=tuple(nodes), links=tuple(links))


def grid_topology(
    planes: int,
    per_plane: int,
    link: Optional[LinkSpec] = None,
    *,
    name: str = "grid",
    satellites: bool = False,
    altitude_km: float = 1000.0,
    inclination_deg: float = 60.0,
    wrap_planes: bool = True,
) -> Topology:
    """A Walker-style grid: *planes* rings of *per_plane* satellites.

    Node ``p{p}s{s}`` is satellite *s* of plane *p*.  Intra-plane links
    close each ring; cross-plane links join same-index satellites of
    neighbouring planes (wrapping the last plane to the first when
    *wrap_planes* and ``planes > 2``).  Link names: ``p{p}.l{s}``
    intra-plane, ``x{p}.l{s}`` cross-plane.
    """
    if planes < 1 or per_plane < 3:
        raise ValueError("a grid needs >= 1 plane of >= 3 satellites")
    template = link or LinkSpec()
    nodes: list[Any] = []
    for p in range(planes):
        if satellites:
            nodes.extend(
                _ring_satellites(
                    per_plane, altitude_km, inclination_deg,
                    raan_deg=180.0 * p / planes, prefix=f"p{p}s",
                )
            )
        else:
            nodes.extend(f"p{p}s{s}" for s in range(per_plane))
    links: list[LinkSpec] = []
    for p in range(planes):
        for s in range(per_plane):
            links.append(
                _expand_template(
                    template, name=f"p{p}.l{s}",
                    a=f"p{p}s{s}", b=f"p{p}s{(s + 1) % per_plane}",
                )
            )
    cross_pairs = planes if (wrap_planes and planes > 2) else planes - 1
    for p in range(cross_pairs):
        q = (p + 1) % planes
        for s in range(per_plane):
            links.append(
                _expand_template(
                    template, name=f"x{p}.l{s}", a=f"p{p}s{s}", b=f"p{q}s{s}",
                )
            )
    return Topology(name=name, nodes=tuple(nodes), links=tuple(links))

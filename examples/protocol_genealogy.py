#!/usr/bin/env python3
"""The paper's protocol genealogy, measured side by side.

Section 1 positions LAMS-DLC against its ancestors: Go-Back-N,
selective-repeat HDLC, the Stutter family, and NBDT's multiphase and
continuous modes.  Every one of them is implemented in this library;
this example runs all six under identical saturated load and identical
random streams, and prints the scoreboard with each protocol's defining
limitation.

Run:  python examples/protocol_genealogy.py
"""

from __future__ import annotations

from repro.experiments.reporting import render_table
from repro.experiments.runner import measure_saturated
from repro.workloads import preset

LIMITATIONS = {
    "gbn": "discards the whole pipeline per error (§2.3)",
    "hdlc": "window stalls one RTT per W frames",
    "hdlc+stutter": "fills stalls with copies: latency bought with bandwidth",
    "nbdt-multiphase": "phase alternation leaves the line idle",
    "nbdt-continuous": "unbounded sender memory; no failure detection",
    "lams": "duplication possible in enforced recovery (fixable: E13)",
}


def main() -> None:
    scenario = preset("noisy")
    duration = 2.0
    rows = []
    runs = [
        ("gbn", "gbn", None),
        ("hdlc", "hdlc", None),
        ("hdlc+stutter", "hdlc", {"stutter": True}),
        ("nbdt-multiphase", "nbdt-multiphase", None),
        ("nbdt-continuous", "nbdt-continuous", None),
        ("lams", "lams", None),
    ]
    for label, protocol, overrides in runs:
        result = measure_saturated(
            scenario, protocol, duration, seed=23, overrides=overrides
        )
        rows.append(
            {
                "protocol": label,
                "efficiency": result["efficiency"],
                "iframes_sent": result["iframes_sent"],
                "holding_ms": result["mean_holding_time"] * 1e3,
                "limitation": LIMITATIONS[label],
            }
        )
    rows.sort(key=lambda row: row["efficiency"])
    print(render_table(
        rows,
        title=f"Saturated goodput, {scenario.name} preset "
              f"(BER {scenario.iframe_ber:g}, RTT {scenario.round_trip_time*1e3:.0f} ms, "
              f"{duration:.0f}s runs)",
    ))
    print("\nEach protocol in the paper's genealogy fixes its predecessor's")
    print("problem and introduces the one LAMS-DLC was designed to remove.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Short link lifetimes: orbit-derived passes with retargeting overhead.

The paper's opening problem statement: LAMS links exist for minutes,
and "a large retargeting overhead … occupies a significant portion of
the link lifetime".  This example derives real visibility windows from
the orbit model, compresses them into a fast-running schedule, and runs
LAMS-DLC and SR-HDLC sessions across the passes — showing the zero-loss
carry-over between sessions and the goodput cost of the overhead.

Run:  python examples/link_lifetime_sessions.py
"""

from __future__ import annotations

from repro.core import LamsDlcConfig
from repro.hdlc import HdlcConfig
from repro.session import LinkSessionManager, PassSchedule
from repro.session.factories import hdlc_session_factory, lams_session_factory
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    Satellite,
    Simulator,
    StreamRegistry,
    visibility_windows,
)

BIT_RATE = 100e6
N_MESSAGES = 30_000


def main() -> None:
    # Real geometry: a cross-plane pair whose range-limited windows give
    # the pass structure (we only borrow the duty cycle, scaled down so
    # the example runs in seconds).
    sat_a = Satellite("a", altitude_km=1000, inclination_deg=60, raan_deg=0)
    sat_b = Satellite("b", altitude_km=1000, inclination_deg=60, raan_deg=30)
    windows = visibility_windows(sat_a, sat_b, 0.0, 2 * sat_a.period_s,
                                 max_range_km=3200.0, step_s=5.0)
    if windows:
        duty = sum(w.duration for w in windows) / (2 * sat_a.period_s)
        print(f"orbit-derived duty cycle: {len(windows)} windows, "
              f"{duty*100:.0f}% of the time in laser range")
    # Scaled schedule: four 0.5 s passes with 0.2 s retargeting gaps.
    schedule = PassSchedule.periodic(first_start=0.05, duration=0.5, gap=0.2, count=4)

    for label, factory, init_time in (
        ("LAMS-DLC, 10ms init", lams_session_factory(
            LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)), 0.010),
        ("LAMS-DLC, 100ms init", lams_session_factory(
            LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)), 0.100),
        ("SR-HDLC, 10ms init", hdlc_session_factory(
            HdlcConfig(window_size=64, sequence_bits=7, timeout=0.07)), 0.010),
    ):
        sim = Simulator()
        link = FullDuplexLink(
            sim, bit_rate=BIT_RATE, propagation_delay=0.010, name="isl",
            iframe_errors=BernoulliChannel(1e-6), cframe_errors=BernoulliChannel(1e-8),
            streams=StreamRegistry(seed=3),
        )
        delivered: list = []
        manager = LinkSessionManager(
            sim, link, schedule, factory, init_time=init_time,
            deliver=delivered.append,
        )
        for i in range(N_MESSAGES):
            manager.send(("pkt", i))
        sim.run(until=4.0)

        ids = {p[1] for p in delivered}
        backlog_ids = {p[1] for p in manager._queue}
        lost = N_MESSAGES - len(ids | backlog_ids)
        iframe_time = 8272 / BIT_RATE
        goodput = len(ids) * iframe_time / schedule.total_link_time
        print(f"\n{label}:")
        print(f"  passes run        : {manager.passes_run}")
        print(f"  delivered unique  : {len(ids)} / {N_MESSAGES}")
        print(f"  goodput efficiency: {goodput:.3f} of the total link time")
        print(f"  carried over      : {manager.carried_over} frame-slots "
              f"(duplicates removable downstream)")
        print(f"  lost              : {lost}")


if __name__ == "__main__":
    main()

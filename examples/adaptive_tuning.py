#!/usr/bin/env python3
"""Automatic protocol tuning from physical link parameters.

Uses `repro.analysis.tuning.recommend_config` — the paper's design
rules as an algorithm — to configure LAMS-DLC for three very different
links, then verifies each recommendation by simulation.

Run:  python examples/adaptive_tuning.py
"""

from __future__ import annotations

from repro.analysis.tuning import recommend_config
from repro.experiments.runner import measure_saturated
from repro.workloads import LinkScenario

LINKS = [
    dict(name="short+clean", bit_rate=300e6, distance_km=2000, iframe_ber=1e-7),
    dict(name="long+bursty", bit_rate=300e6, distance_km=10_000, iframe_ber=1e-6,
         mean_burst=0.015),
    dict(name="gigabit", bit_rate=1e9, distance_km=5000, iframe_ber=1e-5),
]


def main() -> None:
    for link in LINKS:
        name = link.pop("name")
        config, rationale = recommend_config(cframe_ber=1e-9, **link)
        print(f"=== {name}: {link['bit_rate']/1e6:.0f} Mbps x "
              f"{link['distance_km']:.0f} km, BER {link['iframe_ber']:g} ===")
        print(f"  payload        : {config.iframe_payload_bits} bits "
              f"({rationale['payload_rule']})")
        print(f"  W_cp           : {config.checkpoint_interval*1e3:.2f} ms "
              f"({rationale['checkpoint_rule']})")
        print(f"  C_depth        : {config.cumulation_depth} "
              f"({rationale['cumulation_rule']})")
        print(f"  numbering      : 2^{config.numbering_bits} "
              f"({rationale['numbering_rule']})")
        print(f"  failure detect : {rationale['failure_detection_latency']*1e3:.1f} ms")

        scenario = LinkScenario(
            name=name,
            bit_rate=link["bit_rate"],
            distance_km=link["distance_km"],
            iframe_ber=link["iframe_ber"],
            cframe_ber=1e-9,
            iframe_payload_bits=config.iframe_payload_bits,
            checkpoint_interval=config.checkpoint_interval,
            cumulation_depth=config.cumulation_depth,
            numbering_bits=config.numbering_bits,
            processing_time=2e-6,
        )
        result = measure_saturated(scenario, "lams", duration=1.0, seed=11)
        print(f"  -> simulated goodput efficiency: {result['efficiency']:.3f}, "
              f"holding {result['mean_holding_time']*1e3:.1f} ms\n")

        link["name"] = name  # restore for clarity if reused


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""LEO constellation scenario: orbit-driven link with finite lifetime.

The paper's defining environment (Section 2.1): low-altitude satellites
whose inter-satellite laser links have time-varying distance, large RTT
variance, and lifetimes of minutes.  This example:

1. places two satellites on crossing 1000 km orbits,
2. computes their visibility windows and RTT statistics (including the
   ``alpha >= R_max - R`` timeout margin HDLC would need),
3. runs LAMS-DLC over the *time-varying* link for one window with the
   numbering space validated against the paper's Section-3.3 bound, and
4. reports delivery accounting across the pass.

Run:  python examples/leo_constellation.py
"""

from __future__ import annotations

from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    IsolatedLinkGeometry,
    Satellite,
    Simulator,
    StreamRegistry,
)
from repro.workloads.generators import ConstantRateSource

BIT_RATE = 300e6
IFRAME_BER = 1e-6
CFRAME_BER = 1e-8


def main() -> None:
    sat_a = Satellite("alpha", altitude_km=1000, inclination_deg=60, raan_deg=0, phase_deg=0)
    sat_b = Satellite("bravo", altitude_km=1000, inclination_deg=60, raan_deg=30, phase_deg=4)
    geometry = IsolatedLinkGeometry(sat_a, sat_b)

    print(f"orbital period: {sat_a.period_s/60:.1f} min")
    stats = geometry.rtt_stats(0.0, 2 * sat_a.period_s, step_s=5.0)
    print(f"RTT over two orbits: {stats['min']*1e3:.2f}–{stats['max']*1e3:.2f} ms "
          f"(var {stats['variance']:.3e})")
    print(f"HDLC would need alpha >= R_max - R = {stats['alpha_min']*1e3:.2f} ms "
          "of timeout margin on this pair")

    # Link lifetime: when the pair is within a 4,000 km laser range.
    windows = geometry.windows(0.0, 2 * sat_a.period_s, max_range_km=4000.0, step_s=5.0)
    if not windows:
        raise SystemExit("no visibility window in the simulated span")
    window = max(windows, key=lambda w: w.duration)
    print(f"\nusing visibility window {window.start:.0f}s – {window.end:.0f}s "
          f"({window.duration/60:.1f} min link lifetime)")

    # Build the simulation starting at the window's opening instant.
    sim = Simulator()
    sim.run(until=window.start)  # advance the clock to pass start
    link = FullDuplexLink(
        sim, bit_rate=BIT_RATE, propagation_delay=geometry.delay_fn(),
        name="isl", iframe_errors=BernoulliChannel(IFRAME_BER),
        cframe_errors=BernoulliChannel(CFRAME_BER), streams=StreamRegistry(seed=42),
    )
    config = LamsDlcConfig(
        checkpoint_interval=0.005,
        cumulation_depth=3,
        numbering_bits=16,
        link_lifetime=window.duration,
    )
    # Validate the sequence space against the paper's bound for the
    # *worst-case* RTT of the pass.
    config.validate_for_link(round_trip_time=stats["max"], bit_rate=BIT_RATE)
    print(f"numbering: 2^{config.numbering_bits} = {config.numbering_size} >= "
          f"required {config.required_numbering_size(stats['max'], (config.iframe_bits)/BIT_RATE)}")

    delivered: list = []
    a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)
    a.start(send=True, receive=False)
    b.start(send=False, receive=True)

    # Offer traffic at 60% of line rate for the first half of the pass.
    iframe_time = config.iframe_bits / BIT_RATE
    source = ConstantRateSource(sim, a, rate=0.6 / iframe_time)
    source.start()
    sim.schedule_at(window.start + min(20.0, window.duration / 2), source.stop)
    sim.run(until=window.start + min(30.0, window.duration))

    sender = a.sender
    ids = [p[1] for p in delivered]
    print(f"\npass results ({sim.now - window.start:.1f}s simulated):")
    print(f"  offered   : {source.offered}")
    print(f"  delivered : {len(ids)} (exactly once: {len(ids) == len(set(ids))})")
    print(f"  unresolved: {sender.unresolved_count} (still recoverable)")
    print(f"  retransmit: {sender.retransmissions}")
    print(f"  holding   : {sender.mean_holding_time*1e3:.2f} ms "
          "(tracks the time-varying RTT)")
    print(f"  failures  : {'declared' if sender.failed else 'none'}")


if __name__ == "__main__":
    main()

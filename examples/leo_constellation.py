#!/usr/bin/env python3
"""LEO constellation scenario: orbit-driven links with finite lifetime.

The paper's defining environment (Section 2.1): low-altitude satellites
whose inter-satellite laser links have time-varying distance, large RTT
variance, and lifetimes of minutes.  This example runs in two acts,
both on the declarative topology API:

1. **One pass, one link** — places two satellites on crossing 1000 km
   orbits, computes their visibility windows and RTT statistics
   (including the ``alpha >= R_max - R`` timeout margin HDLC would
   need), then describes the inter-satellite link as a single
   :class:`~repro.topology.LinkSpec` whose ``propagation_delay`` is the
   geometry's time-varying delay function, and runs LAMS-DLC over it
   for one window with the numbering space validated against the
   paper's Section-3.3 bound.
2. **One plane, many links** — declares a six-satellite orbital ring
   with ``ring_topology(..., satellites=True)`` (per-link delays derive
   from the orbit geometry automatically), drives cross-plane datagram
   traffic through :func:`~repro.topology.build_constellation`, and
   prints the network-wide rollup.

Run:  python examples/leo_constellation.py
"""

from __future__ import annotations

from repro.core import LamsDlcConfig
from repro.simulator import IsolatedLinkGeometry, Satellite, Simulator
from repro.topology import (
    EndpointSpec,
    LinkSpec,
    build_constellation,
    cross_traffic,
    ring_topology,
)
from repro.topology.spec import build_link, instantiate_pair
from repro.workloads.generators import ConstantRateSource

BIT_RATE = 300e6
IFRAME_BER = 1e-6
CFRAME_BER = 1e-8


def single_pass() -> None:
    sat_a = Satellite("alpha", altitude_km=1000, inclination_deg=60, raan_deg=0, phase_deg=0)
    sat_b = Satellite("bravo", altitude_km=1000, inclination_deg=60, raan_deg=30, phase_deg=4)
    geometry = IsolatedLinkGeometry(sat_a, sat_b)

    print(f"orbital period: {sat_a.period_s/60:.1f} min")
    stats = geometry.rtt_stats(0.0, 2 * sat_a.period_s, step_s=5.0)
    print(f"RTT over two orbits: {stats['min']*1e3:.2f}–{stats['max']*1e3:.2f} ms "
          f"(var {stats['variance']:.3e})")
    print(f"HDLC would need alpha >= R_max - R = {stats['alpha_min']*1e3:.2f} ms "
          "of timeout margin on this pair")

    # Link lifetime: when the pair is within a 4,000 km laser range.
    windows = geometry.windows(0.0, 2 * sat_a.period_s, max_range_km=4000.0, step_s=5.0)
    if not windows:
        raise SystemExit("no visibility window in the simulated span")
    window = max(windows, key=lambda w: w.duration)
    print(f"\nusing visibility window {window.start:.0f}s – {window.end:.0f}s "
          f"({window.duration/60:.1f} min link lifetime)")

    config = LamsDlcConfig(
        checkpoint_interval=0.005,
        cumulation_depth=3,
        numbering_bits=16,
        link_lifetime=window.duration,
    )
    # Validate the sequence space against the paper's bound for the
    # *worst-case* RTT of the pass.
    config.validate_for_link(round_trip_time=stats["max"], bit_rate=BIT_RATE)
    print(f"numbering: 2^{config.numbering_bits} = {config.numbering_size} >= "
          f"required {config.required_numbering_size(stats['max'], (config.iframe_bits)/BIT_RATE)}")

    # The whole operating point as one declarative value: physics
    # (rate + orbit-driven time-varying delay), impairments, protocol
    # config, per-side roles, and the RNG seed.
    delivered: list = []
    spec = LinkSpec(
        name="isl", a="alpha", b="bravo",
        bit_rate=BIT_RATE,
        propagation_delay=geometry.delay_fn(),
        iframe_errors=("bernoulli", {"ber": IFRAME_BER}),
        cframe_errors=("bernoulli", {"ber": CFRAME_BER}),
        config=config,
        seed=42,
        endpoint_a=EndpointSpec(receive=False),
        endpoint_b=EndpointSpec(deliver=delivered.append, send=False),
    )

    # Build the simulation starting at the window's opening instant.
    sim = Simulator()
    sim.run(until=window.start)  # advance the clock to pass start
    link = build_link(spec, sim)
    a, b = instantiate_pair(spec, sim, link)
    a.start(send=spec.endpoint_a.send, receive=spec.endpoint_a.receive)
    b.start(send=spec.endpoint_b.send, receive=spec.endpoint_b.receive)

    # Offer traffic at 60% of line rate for the first half of the pass.
    iframe_time = config.iframe_bits / BIT_RATE
    source = ConstantRateSource(sim, a, rate=0.6 / iframe_time)
    source.start()
    sim.schedule_at(window.start + min(20.0, window.duration / 2), source.stop)
    sim.run(until=window.start + min(30.0, window.duration))

    sender = a.sender
    ids = [p[1] for p in delivered]
    print(f"\npass results ({sim.now - window.start:.1f}s simulated):")
    print(f"  offered   : {source.offered}")
    print(f"  delivered : {len(ids)} (exactly once: {len(ids) == len(set(ids))})")
    print(f"  unresolved: {sender.unresolved_count} (still recoverable)")
    print(f"  retransmit: {sender.retransmissions}")
    print(f"  holding   : {sender.mean_holding_time*1e3:.2f} ms "
          "(tracks the time-varying RTT)")
    print(f"  failures  : {'declared' if sender.failed else 'none'}")


def orbital_plane() -> None:
    # Six satellites evenly spaced around one 1000 km plane; every
    # neighbour pair gets a LAMS-DLC ISL whose propagation delay the
    # builder derives from the two orbits.
    template = LinkSpec(
        bit_rate=BIT_RATE,
        iframe_errors=("bernoulli", {"ber": IFRAME_BER}),
        cframe_errors=("bernoulli", {"ber": CFRAME_BER}),
        overrides={"checkpoint_interval": 0.005, "cumulation_depth": 3},
    )
    topo = ring_topology(6, template, name="leo-plane", satellites=True,
                         altitude_km=1000.0, inclination_deg=60.0)
    duration = 2.0
    flows = cross_traffic(topo.node_names(), stride=2, messages=40,
                          interval=duration / 80, poisson=True)
    constellation = build_constellation(
        topo, master_seed=7, flows=flows, horizon=duration,
        probe_interval=duration / 50,
    )
    constellation.run(until=duration)
    rollup = constellation.network_rollup()
    print(f"\norbital plane {topo.name}: {len(topo.nodes)} satellites, "
          f"{len(topo.links)} ISLs, {len(flows)} crossing flows, "
          f"{duration:g}s simulated")
    print(f"  datagrams : {rollup['datagrams_delivered']}/{rollup['datagrams_sent']} "
          f"delivered, mean end-to-end delay {rollup['e2e_delay_mean']*1e3:.1f} ms")
    print(f"  frames    : {rollup['frames_sent']} sent, "
          f"{rollup['frames_corrupted']} corrupted")
    print(f"  engine    : {rollup['events']} events in one simulator, "
          f"peak heap {rollup['peak_heap']}, "
          f"peak buffered/link {rollup['peak_buffered_max']}")


def main() -> None:
    single_pass()
    orbital_plane()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: a reliable LAMS-DLC transfer over a lossy laser ISL.

Builds a 5,000 km / 300 Mbps inter-satellite link with a residual BER
of 1e-6, runs LAMS-DLC across it, transfers 10,000 frames, and prints
the protocol's accounting: zero loss, exactly-once delivery, the NAK
traffic that achieved it, and the holding time / buffer occupancy the
paper's Section 4 predicts.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import lams as lams_model
from repro.workloads import build_lams_simulation, preset
from repro.workloads.generators import FiniteBatch


def main() -> None:
    scenario = preset("nominal")  # 300 Mbps, 5000 km, BER 1e-6
    print(f"link: {scenario.bit_rate/1e6:.0f} Mbps, {scenario.distance_km:.0f} km "
          f"(RTT {scenario.round_trip_time*1000:.1f} ms), I-frame BER {scenario.iframe_ber:g}")

    setup = build_lams_simulation(scenario, seed=7)
    n_frames = 10_000
    FiniteBatch(setup.sim, setup.endpoint_a, count=n_frames).start()
    setup.run(until=30.0)

    sender = setup.endpoint_a.sender
    receiver = setup.endpoint_b.receiver
    delivered_ids = sorted(p[1] for p in setup.delivered)

    print(f"\ntransferred {n_frames} frames:")
    print(f"  delivered exactly once : {delivered_ids == list(range(n_frames))}")
    print(f"  I-frames sent          : {sender.iframes_sent}")
    print(f"  retransmissions        : {sender.retransmissions} "
          f"({100 * sender.retransmissions / sender.iframes_sent:.2f}%)")
    print(f"  checkpoints received   : {sender.checkpoints_received}")
    print(f"  NAK-carrying errors    : {receiver.iframes_corrupted} corrupted, "
          f"{receiver.gap_losses_detected} gap losses")

    params = scenario.model_parameters()
    print("\npaper model vs measurement:")
    print(f"  holding time  H_frame  : model {lams_model.holding_time(params)*1000:.2f} ms, "
          f"measured {sender.mean_holding_time*1000:.2f} ms")
    print(f"  retransmit probability : model {params.p_f:.4f}, "
          f"measured {sender.retransmissions / sender.iframes_sent:.4f}")
    # B_LAMS assumes continuous arrivals at the line rate; with a batch
    # workload the equivalent measured quantity is holding time / t_f.
    measured_buffer = sender.mean_holding_time / scenario.iframe_time
    print(f"  transparent buffer     : model {lams_model.transparent_buffer_size(params):.0f} frames, "
          f"measured H_frame/t_f = {measured_buffer:.0f} frames")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Side-by-side: the paper's Section-4 model vs the executable protocols.

Sweeps the residual BER over the paper's stated envelope (1e-7 to 1e-5)
and prints, for each point, the model-predicted and simulation-measured
throughput efficiency of LAMS-DLC and SR-HDLC plus the win factor —
the reproduction's central "who wins, by how much" table.

Run:  python examples/model_vs_simulation.py
"""

from __future__ import annotations

from repro.analysis import hdlc as hdlc_model
from repro.analysis import lams as lams_model
from repro.experiments.reporting import render_table
from repro.experiments.runner import measure_saturated
from repro.workloads import preset


def main() -> None:
    base = preset("nominal")
    duration = 2.0
    rows = []
    for ber in (1e-7, 1e-6, 1e-5):
        scenario = base.with_(iframe_ber=ber, cframe_ber=ber / 100.0)
        params = scenario.model_parameters()

        lams_sim = measure_saturated(scenario, "lams", duration, seed=31)
        hdlc_sim = measure_saturated(scenario, "hdlc", duration, seed=31)
        n_equivalent = max(1, lams_sim["delivered"])

        rows.append(
            {
                "ber": ber,
                "eta_lams_model": lams_model.throughput_efficiency(params, n_equivalent),
                "eta_lams_sim": lams_sim["efficiency"],
                "eta_hdlc_model": hdlc_model.throughput_efficiency(
                    params, max(1, hdlc_sim["delivered"])
                ),
                "eta_hdlc_sim": hdlc_sim["efficiency"],
                "win_model": lams_model.throughput_efficiency(params, n_equivalent)
                / hdlc_model.throughput_efficiency(params, max(1, hdlc_sim["delivered"])),
                "win_sim": lams_sim["efficiency"] / hdlc_sim["efficiency"],
            }
        )

    print(render_table(rows, title=f"Throughput efficiency, saturated load "
                                   f"({duration:.0f}s runs, window={base.window_size})"))
    print("\nShape check: LAMS-DLC near the line rate and ~constant in BER;")
    print("SR-HDLC pinned at its per-window ceiling; win factor >> 1 and")
    print("consistent between model and simulation.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-hop store-and-forward with destination resequencing.

The paper's architectural argument (Sections 2.3 and 3.3): because
LAMS-DLC relaxes in-sequence delivery, intermediate satellites forward
frames the moment they are processed — no per-hop resequencing buffer —
and only the *destination* reorders and deduplicates.  This example
builds a four-satellite chain, pushes two crossing datagram flows
through it over lossy links, and reports per-hop and end-to-end
accounting.

Run:  python examples/multihop_store_and_forward.py
"""

from __future__ import annotations

from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.netlayer import (
    DatagramService,
    DeliveryLog,
    ForwardingNetworkLayer,
    shortest_path_routes,
)
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    Node,
    Simulator,
    StreamRegistry,
)

HOPS = 3  # four nodes: n0 — n1 — n2 — n3
IFRAME_BER = 5e-6


def build_chain(sim: Simulator):
    names = [f"n{i}" for i in range(HOPS + 1)]
    topology: dict[str, dict[str, str]] = {name: {} for name in names}
    for i in range(HOPS):
        topology[names[i]][names[i + 1]] = f"l{i}"
        topology[names[i + 1]][names[i]] = f"l{i}"

    logs = {name: DeliveryLog(sim) for name in names}
    nodes: dict[str, Node] = {}
    layers: dict[str, ForwardingNetworkLayer] = {}
    for name in names:
        layer = ForwardingNetworkLayer(
            sim, address=name,
            routes=shortest_path_routes(topology, name),
            deliver=logs[name],
        )
        node = Node(sim, name, network_layer=layer)
        layer.bind(node)
        nodes[name], layers[name] = node, layer

    config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
    endpoints = {}
    for i in range(HOPS):
        link = FullDuplexLink(
            sim, bit_rate=100e6, propagation_delay=0.010, name=f"l{i}",
            iframe_errors=BernoulliChannel(IFRAME_BER),
            cframe_errors=BernoulliChannel(IFRAME_BER / 100),
            streams=StreamRegistry(seed=100 + i),
        )
        left, right = names[i], names[i + 1]
        a, b = lams_dlc_pair(
            sim, link, config,
            deliver_a=lambda pkt, ln=f"l{i}", nd=left: nodes[nd].deliver_up(pkt, ln),
            deliver_b=lambda pkt, ln=f"l{i}", nd=right: nodes[nd].deliver_up(pkt, ln),
        )
        a.start()
        b.start()
        nodes[left].attach_endpoint(f"l{i}", a)
        nodes[right].attach_endpoint(f"l{i}", b)
        endpoints[(left, f"l{i}")] = a
        endpoints[(right, f"l{i}")] = b

    services = {name: DatagramService(sim, layers[name]) for name in names}
    return names, nodes, layers, services, logs, endpoints


def main() -> None:
    sim = Simulator()
    names, nodes, layers, services, logs, endpoints = build_chain(sim)
    first, last = names[0], names[-1]

    n_messages = 500
    for i in range(n_messages):
        services[first].send(last, data=("fwd", i))
        services[last].send(first, data=("rev", i))
    sim.run(until=30.0)

    print(f"chain: {' — '.join(names)}  (BER {IFRAME_BER:g} per link)\n")
    for name in names:
        reseq = layers[name].resequencer
        print(f"{name}: forwarded {layers[name].forwarded:4d} transit datagrams, "
              f"delivered {reseq.delivered:4d} local, "
              f"reordered {reseq.out_of_order_arrivals:3d}, "
              f"dropped {reseq.duplicates_dropped} duplicates")

    fwd, rev = logs[last], logs[first]
    print(f"\nforward flow {first} → {last}: {len(fwd)} delivered, "
          f"in order: {fwd.in_order(first)}, exactly once: {fwd.exactly_once(first, n_messages)}, "
          f"mean delay {fwd.mean_delay()*1e3:.1f} ms")
    print(f"reverse flow {last} → {first}: {len(rev)} delivered, "
          f"in order: {rev.in_order(last)}, exactly once: {rev.exactly_once(last, n_messages)}, "
          f"mean delay {rev.mean_delay()*1e3:.1f} ms")

    total_retx = sum(ep.sender.retransmissions for ep in endpoints.values())
    print(f"\nlink-level retransmissions across all hops: {total_retx}")
    print("intermediate hops held no resequencing state — ordering is "
          "restored only at each destination (the relaxed-I architecture).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-hop store-and-forward with destination resequencing.

The paper's architectural argument (Sections 2.3 and 3.3): because
LAMS-DLC relaxes in-sequence delivery, intermediate satellites forward
frames the moment they are processed — no per-hop resequencing buffer —
and only the *destination* reorders and deduplicates.  This example
declares a four-satellite chain as a :class:`~repro.topology.Topology`
(one :class:`~repro.topology.LinkSpec` template stamped across the
hops), materialises it with :func:`~repro.topology.build_constellation`,
pushes two crossing datagram flows through it over lossy links, and
reports per-hop and end-to-end accounting.

The hand-wired version of this chain (link by link, endpoint by
endpoint) lives on in ``tests/test_topology_conformance.py``, which
asserts the declarative build reproduces its delivery accounting
exactly.

Run:  python examples/multihop_store_and_forward.py
"""

from __future__ import annotations

from repro.core import LamsDlcConfig
from repro.simulator import Simulator
from repro.topology import build_constellation, chain_topology, LinkSpec

HOPS = 3  # four nodes: n0 — n1 — n2 — n3
IFRAME_BER = 5e-6


def build_chain_topology():
    """The declarative chain: one template spec, per-hop seeds."""
    template = LinkSpec(
        config=LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3),
        bit_rate=100e6,
        propagation_delay=0.010,
        iframe_errors=("bernoulli", {"ber": IFRAME_BER}),
        cframe_errors=("bernoulli", {"ber": IFRAME_BER / 100}),
    )
    topo = chain_topology(HOPS, template, name="relay-chain")
    # Pin each hop's RNG seed (matching the historical hand-wired
    # wiring); leaving seed=None would derive them from the master seed.
    return topo.map_links(
        lambda spec: spec.with_(seed=100 + int(spec.name[1:]))
    )


def main() -> None:
    sim = Simulator()
    topo = build_chain_topology()
    constellation = build_constellation(topo, sim=sim)
    names = topo.node_names()
    first, last = names[0], names[-1]

    n_messages = 500
    for i in range(n_messages):
        constellation.services[first].send(last, data=("fwd", i))
        constellation.services[last].send(first, data=("rev", i))
    constellation.run(until=30.0)

    print(f"chain: {' — '.join(names)}  (BER {IFRAME_BER:g} per link)\n")
    for name in names:
        layer = constellation.layers[name]
        reseq = layer.resequencer
        print(f"{name}: forwarded {layer.forwarded:4d} transit datagrams, "
              f"delivered {reseq.delivered:4d} local, "
              f"reordered {reseq.out_of_order_arrivals:3d}, "
              f"dropped {reseq.duplicates_dropped} duplicates")

    fwd, rev = constellation.logs[last], constellation.logs[first]
    print(f"\nforward flow {first} → {last}: {len(fwd)} delivered, "
          f"in order: {fwd.in_order(first)}, exactly once: {fwd.exactly_once(first, n_messages)}, "
          f"mean delay {fwd.mean_delay()*1e3:.1f} ms")
    print(f"reverse flow {last} → {first}: {len(rev)} delivered, "
          f"in order: {rev.in_order(last)}, exactly once: {rev.exactly_once(last, n_messages)}, "
          f"mean delay {rev.mean_delay()*1e3:.1f} ms")

    total_retx = sum(
        runtime.endpoint_a.sender.retransmissions
        + runtime.endpoint_b.sender.retransmissions
        for runtime in constellation.links.values()
    )
    print(f"\nlink-level retransmissions across all hops: {total_retx}")
    print("intermediate hops held no resequencing state — ordering is "
          "restored only at each destination (the relaxed-I architecture).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Wire-format capture: a LAMS-DLC exchange as real octets.

Encodes one round of the protocol conversation — three I-frames (one
carrying the piggybacked Stop-Go bit), a Check-Point-NAK, a
Request-NAK, and an Enforced-NAK — to their on-the-wire byte layouts,
prints each as a hexdump, then corrupts one byte of each frame and
shows the CRC catching it (assumption 9: all errors detectable).

Run:  python examples/wire_format_capture.py
"""

from __future__ import annotations

from repro.core.frames import CheckpointFrame, IFrame, RequestNakFrame
from repro.core.wire import WireFormatError, decode_frame, encode_frame


def hexdump(data: bytes, width: int = 16) -> str:
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset:offset + width]
        hex_part = " ".join(f"{byte:02x}" for byte in chunk)
        ascii_part = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"  {offset:04x}  {hex_part:<{width * 3}} |{ascii_part}|")
    return "\n".join(lines)


def main() -> None:
    conversation = [
        ("I-frame N(S)=0", IFrame(seq=0, payload=None, size_bits=8,
                                  transmit_index=0), b"telemetry block 0"),
        ("I-frame N(S)=1 (Stop-Go piggybacked)",
         IFrame(seq=1, payload=None, size_bits=8, transmit_index=1,
                stop_go=True), b"telemetry block 1"),
        ("I-frame N(S)=7, retransmission of incarnation 2",
         IFrame(seq=7, payload=None, size_bits=8, transmit_index=7,
                origin=2), b"telemetry block 2"),
        ("Check-Point-NAK (cp 12, NAKs {2, 3}, frontier 7)",
         CheckpointFrame(cp_index=12, issue_time=0.060, naks=(2, 3),
                         frontier=7, stop_go=False), b""),
        ("Request-NAK (probe at t=0.075)",
         RequestNakFrame(request_time=0.075), b""),
        ("Enforced-NAK / resolving command",
         CheckpointFrame(cp_index=13, issue_time=0.0817, naks=(2,),
                         frontier=7, enforced=True), b""),
    ]

    encoded = []
    for label, frame, payload in conversation:
        data = encode_frame(frame, payload=payload)
        encoded.append((label, data))
        print(f"{label}  ({len(data)} bytes on the wire)")
        print(hexdump(data))
        decoded = decode_frame(data)
        print(f"  decodes to: {decoded!r}\n")

    print("corrupting one byte of each frame (assumption 9: detectable):")
    for label, data in encoded:
        corrupted = bytearray(data)
        corrupted[len(corrupted) // 2] ^= 0x20
        try:
            decode_frame(bytes(corrupted))
            print(f"  {label}: UNDETECTED  <-- must never happen")
        except WireFormatError as error:
            print(f"  {label}: detected ({error})")


if __name__ == "__main__":
    main()

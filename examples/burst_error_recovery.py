#!/usr/bin/env python3
"""Burst errors: cumulative NAKs vs SR-HDLC under laser mispointing.

Section 3.3's claim: "with cumulative NAKs we avoid this performance
degradation provided that ``C_depth · W_cp > L_burst``".  This example
sweeps the mean burst length of a Gilbert–Elliott channel across that
condition for two LAMS-DLC configurations (shallow and deep cumulative
coverage) and for SR-HDLC, and prints the goodput of each.

Run:  python examples/burst_error_recovery.py
"""

from __future__ import annotations

from repro.experiments.reporting import render_table
from repro.experiments.runner import measure_burst_utilization
from repro.workloads import preset


def main() -> None:
    base = preset("nominal")
    duration = 3.0
    rows = []
    for mean_burst in (0.002, 0.010, 0.030):
        # Shallow coverage: C_depth * W_cp = 10 ms.
        shallow = base.with_(checkpoint_interval=0.005, cumulation_depth=2)
        # Deep coverage: C_depth * W_cp = 40 ms.
        deep = base.with_(checkpoint_interval=0.005, cumulation_depth=8)
        for label, scenario in (("lams C*W=10ms", shallow), ("lams C*W=40ms", deep)):
            result = measure_burst_utilization(
                scenario, "lams", duration,
                mean_burst=mean_burst, mean_gap=0.25, seed=17,
            )
            rows.append(
                {
                    "mean_burst_ms": mean_burst * 1e3,
                    "protocol": label,
                    "covered": result["covered"],
                    "goodput": result["efficiency"],
                    "retransmissions": result["retransmissions"],
                }
            )
        result = measure_burst_utilization(
            base, "hdlc", duration, mean_burst=mean_burst, mean_gap=0.25, seed=17,
        )
        rows.append(
            {
                "mean_burst_ms": mean_burst * 1e3,
                "protocol": "sr-hdlc",
                "covered": "-",
                "goodput": result["efficiency"],
                "retransmissions": result["retransmissions"],
            }
        )

    print(render_table(rows, title="Goodput under Gilbert–Elliott bursts "
                                   f"({duration:.0f}s saturated transfers)"))
    print("\n'covered' marks C_depth*W_cp > mean burst length — the paper's")
    print("condition for riding out a burst without resynchronising.")


if __name__ == "__main__":
    main()

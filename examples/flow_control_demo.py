#!/usr/bin/env python3
"""Stop-Go flow control (paper Section 3.4) in action.

A fast sender feeds a receiver whose network layer drains slowly (a
congested downstream satellite).  The receiver's checkpoint commands
carry Stop-Go = 1 while its queue is above the high watermark; the
sender multiplicatively decreases its rate, then additively recovers
when the congestion clears.  Overflow discards are logged as erroneous
so the cumulative NAK retransmits them — congestion never violates
zero loss.

Run:  python examples/flow_control_demo.py
"""

from __future__ import annotations

from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.simulator import FullDuplexLink, Simulator, StreamRegistry
from repro.workloads.generators import ConstantRateSource

RATE = 100e6
DELAY = 0.010


def main() -> None:
    sim = Simulator()
    link = FullDuplexLink(
        sim, bit_rate=RATE, propagation_delay=DELAY, name="isl",
        streams=StreamRegistry(seed=5),
    )
    config = LamsDlcConfig(
        checkpoint_interval=0.005,
        cumulation_depth=3,
        receive_queue_capacity=64,
        receive_high_watermark=32,
        receive_low_watermark=8,
        rate_decrease_factor=0.5,
        rate_increase_step=0.1,
    )
    delivered: list = []
    # The receiver drains one frame per 250 µs — far below the ~83 µs
    # inter-frame time of a saturated 100 Mbps sender.
    a, b = lams_dlc_pair(
        sim, link, config, deliver_b=delivered.append, delivery_interval_b=250e-6,
    )
    a.start(send=True, receive=False)
    b.start(send=False, receive=True)

    iframe_time = config.iframe_bits / RATE
    source = ConstantRateSource(sim, a, rate=0.9 / iframe_time, limit=4000)
    source.start()

    samples = []

    def sample() -> None:
        samples.append(
            (sim.now, a.sender.flow.rate_fraction, b.receiver.receive_queue_length)
        )
        if sim.now < 2.0:
            sim.schedule(0.05, sample)

    sample()
    sim.run(until=3.0)

    print("time   sender-rate   receiver-queue")
    for time, rate, queue in samples:
        bar = "#" * int(rate * 30)
        print(f"{time:5.2f}   {rate:10.3f}   {queue:6d}   {bar}")

    flow = a.sender.flow
    print(f"\nstop indications : {flow.stop_indications}")
    print(f"go indications   : {flow.go_indications}")
    print(f"minimum rate     : {flow.min_fraction_seen:.3f} of line rate")
    print(f"overflow discards: {b.receiver.discards} (all recovered by NAK)")
    ids = sorted({p[1] for p in delivered})
    print(f"delivered        : {len(delivered)} ({len(ids)} unique) — "
          f"zero loss: {ids == list(range(source.offered))}")


if __name__ == "__main__":
    main()

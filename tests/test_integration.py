"""Cross-module integration tests: multi-hop store-and-forward, the
model-vs-simulation agreement bands, and seed-randomised protocol
properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.analysis import lams as lams_model
from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.netlayer import (
    DatagramService,
    DeliveryLog,
    ForwardingNetworkLayer,
    shortest_path_routes,
)
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    Node,
    Simulator,
    StreamRegistry,
)
from repro.workloads import build_lams_simulation, preset
from repro.workloads.generators import FiniteBatch


def build_chain(sim, hops=2, iframe_ber=1e-6, seed=1):
    """A linear constellation: node0 — node1 — ... — node<hops>.

    Every link runs LAMS-DLC; every node store-and-forwards toward the
    last node.  Returns (services, delivery_log, nodes).
    """
    names = [f"n{i}" for i in range(hops + 1)]
    topology: dict[str, dict[str, str]] = {name: {} for name in names}
    links = []
    for i in range(hops):
        link_name = f"l{i}"
        topology[names[i]][names[i + 1]] = link_name
        topology[names[i + 1]][names[i]] = link_name

    destination = names[-1]
    log = DeliveryLog(sim)
    layers = {}
    nodes = {}
    for name in names:
        routes = shortest_path_routes(topology, name)
        deliver = log if name == destination else None
        layer = ForwardingNetworkLayer(sim, address=name, routes=routes, deliver=deliver)
        node = Node(sim, name, network_layer=layer)
        layer.bind(node)
        layers[name] = layer
        nodes[name] = node

    config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
    for i in range(hops):
        link = FullDuplexLink(
            sim, bit_rate=100e6, propagation_delay=0.010, name=f"l{i}",
            iframe_errors=BernoulliChannel(iframe_ber),
            cframe_errors=BernoulliChannel(iframe_ber / 100),
            streams=StreamRegistry(seed=seed + i),
        )
        left, right = names[i], names[i + 1]
        a, b = lams_dlc_pair(
            sim, link, config,
            deliver_a=lambda pkt, ln=f"l{i}", nd=left: nodes[nd].deliver_up(pkt, ln),
            deliver_b=lambda pkt, ln=f"l{i}", nd=right: nodes[nd].deliver_up(pkt, ln),
        )
        a.start()
        b.start()
        nodes[left].attach_endpoint(f"l{i}", a)
        nodes[right].attach_endpoint(f"l{i}", b)
        links.append(link)

    services = {name: DatagramService(sim, layers[name]) for name in names}
    return services, log, nodes


class TestMultiHop:
    def test_two_hop_exactly_once_in_order(self):
        sim = Simulator()
        services, log, nodes = build_chain(sim, hops=2, iframe_ber=2e-6, seed=3)
        source = services["n0"]
        for i in range(300):
            source.send("n2", data=i)
        sim.run(until=20.0)
        assert log.exactly_once("n0", 300)
        assert log.in_order("n0")

    def test_three_hop_with_errors(self):
        sim = Simulator()
        services, log, nodes = build_chain(sim, hops=3, iframe_ber=5e-6, seed=4)
        for i in range(200):
            services["n0"].send("n3", data=i)
        sim.run(until=30.0)
        assert log.exactly_once("n0", 200)

    def test_end_to_end_delay_scales_with_hops(self):
        delays = {}
        for hops in (1, 3):
            sim = Simulator()
            services, log, nodes = build_chain(sim, hops=hops, iframe_ber=0.0, seed=5)
            for i in range(50):
                services["n0"].send(f"n{hops}", data=i)
            sim.run(until=20.0)
            assert len(log) == 50
            delays[hops] = log.mean_delay()
        # Three hops cost roughly three times one hop's propagation.
        assert delays[3] > 2.0 * delays[1]

    def test_bidirectional_flows(self):
        sim = Simulator()
        services, log, nodes = build_chain(sim, hops=2, iframe_ber=1e-6, seed=6)
        # Forward flow to n2 (logged) plus reverse flow n2 -> n0.
        reverse_log = DeliveryLog(sim)
        nodes["n0"].network_layer.resequencer.deliver = reverse_log
        for i in range(100):
            services["n0"].send("n2", data=i)
            services["n2"].send("n0", data=i)
        sim.run(until=20.0)
        assert log.exactly_once("n0", 100)
        assert reverse_log.exactly_once("n2", 100)


class TestModelAgreement:
    def test_lams_holding_time_within_band(self):
        scenario = preset("noisy")
        setup = build_lams_simulation(scenario, seed=21)
        FiniteBatch(setup.sim, setup.endpoint_a, count=5000).start()
        setup.run(until=10.0)
        measured = setup.endpoint_a.sender.mean_holding_time
        predicted = lams_model.holding_time(scenario.model_parameters())
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_lams_buffer_within_band(self):
        from repro.experiments.runner import measure_saturated

        scenario = preset("nominal")
        result = measure_saturated(scenario, "lams", duration=2.0, seed=22)
        predicted = lams_model.transparent_buffer_size(scenario.model_parameters())
        # The saturated source adds its refill chunk on top of B_LAMS.
        assert result["sendbuf_avg"] < 3.0 * predicted
        assert result["sendbuf_avg"] > 0.5 * predicted

    def test_lams_efficiency_beats_hdlc_in_simulation(self):
        from repro.experiments.runner import measure_saturated

        scenario = preset("nominal")
        lams = measure_saturated(scenario, "lams", duration=1.5, seed=23)
        hdlc = measure_saturated(scenario, "hdlc", duration=1.5, seed=23)
        assert lams["efficiency"] > 5.0 * hdlc["efficiency"]

    def test_retransmission_rate_matches_p_f(self):
        scenario = preset("noisy")  # P_F ≈ 0.079
        setup = build_lams_simulation(scenario, seed=24)
        FiniteBatch(setup.sim, setup.endpoint_a, count=5000).start()
        setup.run(until=10.0)
        sender = setup.endpoint_a.sender
        observed = sender.retransmissions / sender.iframes_sent
        expected = scenario.model_parameters().p_f
        assert observed == pytest.approx(expected, rel=0.2)


class TestSeededProperties:
    """Hypothesis drives seeds and error rates; the protocol's contract
    (zero loss, exactly-once absent enforced recovery) must hold for all."""

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        iframe_ber=st.sampled_from([0.0, 1e-6, 1e-5, 3e-5]),
        cframe_ber=st.sampled_from([0.0, 1e-6, 1e-4]),
    )
    def test_lams_exactly_once_for_any_seed(self, seed, iframe_ber, cframe_ber):
        sim = Simulator()
        link = FullDuplexLink(
            sim, bit_rate=100e6, propagation_delay=0.010, name="p",
            iframe_errors=BernoulliChannel(iframe_ber),
            cframe_errors=BernoulliChannel(cframe_ber),
            streams=StreamRegistry(seed=seed),
        )
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        delivered = []
        a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        n = 400
        for i in range(n):
            assert a.accept(("pkt", i))
        sim.run(until=30.0)
        ids = [p[1] for p in delivered]
        assert sorted(set(ids)) == list(range(n)), "zero-loss violated"
        if a.sender.request_naks_sent == 0:
            assert len(ids) == len(set(ids)), "duplicate without enforced recovery"

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        outage_start=st.floats(min_value=0.005, max_value=0.05),
        outage_len=st.floats(min_value=0.001, max_value=0.02),
    )
    def test_lams_zero_loss_across_outages(self, seed, outage_start, outage_len):
        sim = Simulator()
        link = FullDuplexLink(
            sim, bit_rate=100e6, propagation_delay=0.010, name="p",
            iframe_errors=BernoulliChannel(1e-6),
            cframe_errors=BernoulliChannel(1e-7),
            streams=StreamRegistry(seed=seed),
        )
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        delivered = []
        a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        n = 300
        for i in range(n):
            assert a.accept(("pkt", i))
        sim.schedule_at(outage_start, link.down)
        sim.schedule_at(outage_start + outage_len, link.up)
        sim.run(until=30.0)
        delivered_ids = {p[1] for p in delivered}
        held_ids = {p[1] for p in a.sender.held_payloads()}
        assert delivered_ids | held_ids == set(range(n)), "frames vanished"


class TestFullDuplexData:
    def test_simultaneous_flows_share_each_channel(self):
        """Both endpoints send data at once: I-frames, checkpoints, and
        probes share each simplex channel; both flows arrive exactly
        once despite errors on both paths."""
        sim = Simulator()
        link = FullDuplexLink(
            sim, bit_rate=100e6, propagation_delay=0.010, name="dx",
            iframe_errors=BernoulliChannel(5e-6),
            cframe_errors=BernoulliChannel(1e-6),
            streams=StreamRegistry(seed=77),
        )
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        to_b, to_a = [], []
        a, b = lams_dlc_pair(
            sim, link, config, deliver_a=to_a.append, deliver_b=to_b.append
        )
        a.start()
        b.start()
        n = 1500
        for i in range(n):
            assert a.accept(("a2b", i))
            assert b.accept(("b2a", i))
        sim.run(until=20.0)
        assert sorted(p[1] for p in to_b) == list(range(n))
        assert sorted(p[1] for p in to_a) == list(range(n))
        assert not a.sender.failed and not b.sender.failed

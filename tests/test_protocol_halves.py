"""Direct unit tests of the LAMS-DLC sender/receiver halves.

The integration suite exercises the halves through real links; these
tests drive them through a stub channel for precise control over frame
sequences — scripted corruption, exact checkpoint contents, resolving
retention, and zero-duplication pruning.
"""

from __future__ import annotations

import pytest

from repro.core.config import LamsDlcConfig
from repro.core.frames import CheckpointFrame, IFrame, RequestNakFrame
from repro.core.receiver import LamsReceiver
from repro.core.sender import LamsSender
from repro.simulator.engine import Simulator

RTT = 0.020
W_CP = 0.005


class StubChannel:
    """Captures sends; emulates the transmitter-idle notification."""

    def __init__(self, sim=None, bit_rate: float = 100e6, delay: float = RTT / 2):
        self.sim = sim
        self.bit_rate = bit_rate
        self.delay = delay
        self.sent: list = []
        self.idle_callbacks: list = []

    # SimplexChannel surface used by the protocol halves:
    def send(self, frame):
        self.sent.append(frame)
        if self.sim is not None:
            # Notify "serialization complete" so sender pacing advances.
            self.sim.schedule(
                self.transmission_time(frame),
                lambda: [cb() for cb in self.idle_callbacks],
            )

    def on_idle(self, callback):
        self.idle_callbacks.append(callback)

    @property
    def is_idle(self):
        return True

    def transmission_time(self, frame):
        return frame.size_bits / self.bit_rate

    def propagation_delay(self, when):
        return self.delay

    def drain(self):
        out, self.sent = self.sent, []
        return out


def make_receiver(sim, **config_overrides):
    config = LamsDlcConfig(
        checkpoint_interval=W_CP, cumulation_depth=3, **config_overrides
    )
    channel = StubChannel()
    delivered = []
    receiver = LamsReceiver(
        sim, config, control_channel=channel, expected_rtt=RTT,
        deliver=delivered.append,
    )
    return receiver, channel, delivered


def iframe(seq, index=None, payload=None, stop_go=False):
    return IFrame(
        seq=seq, payload=payload if payload is not None else ("p", seq),
        size_bits=8272, transmit_index=index if index is not None else seq,
        stop_go=stop_go,
    )


class TestReceiverHalf:
    def test_delivery_after_processing_delay(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.start()
        receiver.on_iframe(iframe(0), corrupted=False)
        assert delivered == []  # needs t_proc
        sim.run(until=0.001)
        assert delivered == [("p", 0)]

    def test_checkpoint_carries_logged_error(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.start()
        receiver.on_iframe(iframe(0), corrupted=True)
        sim.run(until=W_CP + 1e-6)
        checkpoints = [f for f in channel.drain() if isinstance(f, CheckpointFrame)]
        assert len(checkpoints) == 1
        assert checkpoints[0].naks == (0,)

    def test_gap_detection_logs_all_skipped(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.start()
        receiver.on_iframe(iframe(0), corrupted=False)
        receiver.on_iframe(iframe(4, index=4), corrupted=False)  # 1,2,3 lost
        sim.run(until=W_CP + 1e-6)
        checkpoint = [f for f in channel.drain() if isinstance(f, CheckpointFrame)][0]
        assert set(checkpoint.naks) == {1, 2, 3}
        assert receiver.gap_losses_detected == 3

    def test_error_entry_expires_after_c_depth_reports(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.start()
        receiver.on_iframe(iframe(0), corrupted=True)
        sim.run(until=5 * W_CP + 1e-6)
        checkpoints = [f for f in channel.drain() if isinstance(f, CheckpointFrame)]
        nak_lists = [cp.naks for cp in checkpoints]
        assert nak_lists[:3] == [(0,), (0,), (0,)]
        assert all(naks == () for naks in nak_lists[3:])

    def test_enforced_nak_uses_resolving_log(self):
        """An error expired from the cumulative log still appears in the
        Enforced-NAK while within the resolving period."""
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.start()
        receiver.on_iframe(iframe(0), corrupted=True)
        sim.run(until=4 * W_CP + 1e-6)  # entry expired from cumulative log
        channel.drain()
        receiver.on_request_nak(RequestNakFrame(request_time=sim.now), corrupted=False)
        enforced = [f for f in channel.drain() if isinstance(f, CheckpointFrame)]
        assert len(enforced) == 1
        assert enforced[0].enforced
        assert enforced[0].naks == (0,)

    def test_enforced_nak_drops_errors_past_retention(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.start()
        receiver.on_iframe(iframe(0), corrupted=True)
        sim.run(until=receiver.resolving_retention + 0.01)
        channel.drain()
        receiver.on_request_nak(RequestNakFrame(request_time=sim.now), corrupted=False)
        enforced = [f for f in channel.drain() if isinstance(f, CheckpointFrame)][0]
        assert enforced.naks == ()
        assert enforced.is_resolving_command

    def test_corrupted_request_nak_ignored(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.start()
        receiver.on_request_nak(RequestNakFrame(request_time=0.0), corrupted=True)
        assert receiver.enforced_sent == 0

    def test_zero_duplication_suppression_and_pruning(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim, zero_duplication=True)
        receiver.start()
        first = iframe(0, index=0)
        receiver.on_iframe(first, corrupted=False)
        # A renumbered duplicate of the same incarnation.
        duplicate = IFrame(seq=7, payload=("p", 0), size_bits=8272,
                           transmit_index=7, origin=0)
        receiver.on_iframe(duplicate, corrupted=False)
        assert receiver.duplicates_suppressed == 1
        # After the retention window the memory is pruned: the same
        # origin would be accepted again (no stale state forever).
        sim.run(until=receiver._origin_retention + 0.01)
        late = IFrame(seq=9, payload=("p", 0), size_bits=8272,
                      transmit_index=9, origin=0)
        receiver.on_iframe(late, corrupted=False)
        assert receiver.duplicates_suppressed == 1  # not suppressed again

    def test_stop_indicated_watermark(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(
            sim, receive_high_watermark=2, receive_low_watermark=1,
        )
        receiver.start()
        assert not receiver.stop_indicated()
        # Deliveries drain one per t_proc; pile three up synchronously.
        for seq in range(3):
            receiver.on_iframe(iframe(seq, index=seq), corrupted=False)
        assert receiver.stop_indicated()


class TestSenderHalf:
    def make_sender(self, sim, **config_overrides):
        config = LamsDlcConfig(
            checkpoint_interval=W_CP, cumulation_depth=3, **config_overrides
        )
        channel = StubChannel(sim)
        sender = LamsSender(
            sim, config, data_channel=channel, expected_rtt=RTT,
        )
        return sender, channel

    def checkpoint(self, sim, index, naks=(), frontier=None, enforced=False):
        return CheckpointFrame(
            cp_index=index, issue_time=sim.now, naks=naks,
            frontier=frontier, enforced=enforced,
        )

    def test_frames_numbered_sequentially(self):
        sim = Simulator()
        sender, channel = self.make_sender(sim)
        sender.start()
        for i in range(5):
            sender.accept(("pkt", i))
        sim.run(until=0.01)
        seqs = [f.seq for f in channel.drain() if isinstance(f, IFrame)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_release_on_covering_checkpoint(self):
        sim = Simulator()
        sender, channel = self.make_sender(sim)
        sender.start()
        sender.accept(("pkt", 0))
        sim.run(until=0.02)  # frame "arrived" at ~RTT/2
        sender.on_checkpoint(self.checkpoint(sim, 0, frontier=0), corrupted=False)
        assert sender.releases == 1
        assert sender.unresolved_count == 0

    def test_uncovered_frame_not_released(self):
        sim = Simulator()
        sender, channel = self.make_sender(sim)
        sender.start()
        sender.accept(("pkt", 0))
        sim.run(until=0.001)  # expected arrival is RTT/2 = 10 ms away
        sender.on_checkpoint(self.checkpoint(sim, 0, frontier=0), corrupted=False)
        assert sender.releases == 0

    def test_nak_triggers_single_renumbered_retransmission(self):
        sim = Simulator()
        sender, channel = self.make_sender(sim)
        sender.start()
        sender.accept(("pkt", 0))
        sim.run(until=0.02)
        channel.drain()
        sender.on_checkpoint(self.checkpoint(sim, 0, naks=(0,), frontier=0), corrupted=False)
        sim.run(until=0.021)
        retransmitted = [f for f in channel.drain() if isinstance(f, IFrame)]
        assert len(retransmitted) == 1
        assert retransmitted[0].seq == 1         # renumbered
        assert retransmitted[0].origin == 0      # same incarnation
        # A repeat of the same NAK finds nothing outstanding under seq 0.
        sender.on_checkpoint(self.checkpoint(sim, 1, naks=(0,), frontier=0), corrupted=False)
        sim.run(until=0.022)
        assert channel.drain() == []

    def test_trailing_loss_retransmitted(self):
        sim = Simulator()
        sender, channel = self.make_sender(sim)
        sender.start()
        sender.accept(("pkt", 0))
        sender.accept(("pkt", 1))
        sim.run(until=0.02)
        channel.drain()
        # Receiver saw only frame 0 (frontier=0): frame 1 fell off the tail.
        sender.on_checkpoint(self.checkpoint(sim, 0, frontier=0), corrupted=False)
        sim.run(until=0.021)
        resent = [f for f in channel.drain() if isinstance(f, IFrame)]
        assert len(resent) == 1 and resent[0].payload == ("pkt", 1)
        assert sender.retransmissions_by_cause["trailing"] == 1
        assert sender.releases == 1  # frame 0 released

    def test_checkpoint_timeout_probes(self):
        sim = Simulator()
        sender, channel = self.make_sender(sim)
        sender.start()
        sender.accept(("pkt", 0))
        sim.run(until=RTT + 3 * W_CP + 0.001)  # startup watchdog expires
        probes = [f for f in channel.drain() if isinstance(f, RequestNakFrame)]
        assert len(probes) == 1
        assert sender.suspended

    def test_enforced_nak_clears_suspension(self):
        sim = Simulator()
        sender, channel = self.make_sender(sim)
        sender.start()
        sender.accept(("pkt", 0))
        sim.run(until=RTT + 3 * W_CP + 0.001)
        assert sender.suspended
        sender.on_checkpoint(
            self.checkpoint(sim, 0, enforced=True, frontier=None), corrupted=False
        )
        assert not sender.suspended
        assert not sender.failed

    def test_failed_sender_rejects_packets(self):
        sim = Simulator()
        sender, channel = self.make_sender(sim)
        sender.start()
        sim.run(until=5.0)  # no checkpoints ever: watchdog -> probe -> fail
        assert sender.failed
        assert not sender.accept(("pkt", 0))

"""Unit tests for the benchmark tooling around the measurements:
history parsing, last-two comparison, single-core sweep skew handling,
and the profile/compare CLI paths.

The actual throughput numbers are covered by ``benchmarks/``; here we
pin the plumbing those numbers travel through.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.benchmark import (
    append_history,
    bench_sweep_scale,
    compare_last_two,
    profile_hotpath_bench,
    read_history,
)
from repro.cli import main
from repro.simulator.engine import engine_backend


def _write_history(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            json.dump(record, handle)
            handle.write("\n")


def _record(**overrides):
    base = {
        "git_commit": "aaaa",
        "hostname": "host",
        "cpu_count": 4,
        "python": "3.11.0",
        "engine": "pure",
        "batch_window": 64,
        "engine_events_per_sec": 1_000_000.0,
        "saturated_frames_per_sec": 80_000.0,
    }
    base.update(overrides)
    return base


class TestReadHistory:
    def test_reads_records_oldest_first(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _write_history(path, [_record(git_commit="old"),
                              _record(git_commit="new")])
        records = read_history(str(path))
        assert [r["git_commit"] for r in records] == ["old", "new"]

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert len(read_history(str(path))) == 2

    def test_corrupt_record_names_the_line(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"hist\.jsonl:2"):
            read_history(str(path))


class TestCompareLastTwo:
    def test_needs_two_records(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _write_history(path, [_record()])
        with pytest.raises(ValueError, match="at least two"):
            compare_last_two(str(path))

    def test_flags_regressions_and_improvements(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _write_history(path, [
            _record(),
            _record(git_commit="bbbb",
                    engine_events_per_sec=500_000.0,     # -50%: regression
                    saturated_frames_per_sec=160_000.0,  # +100%: improvement
                    ),
        ])
        comparison = compare_last_two(str(path), threshold=0.10)
        assert comparison["old_commit"] == "aaaa"
        assert comparison["new_commit"] == "bbbb"
        by_metric = {row["metric"]: row for row in comparison["rows"]}
        assert by_metric["engine_events_per_sec"]["regressed"]
        assert by_metric["saturated_frames_per_sec"]["improved"]
        assert len(comparison["regressions"]) == 1
        assert len(comparison["improvements"]) == 1

    def test_small_deltas_are_ok(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _write_history(path, [
            _record(),
            _record(engine_events_per_sec=950_000.0),  # -5% < threshold
        ])
        comparison = compare_last_two(str(path), threshold=0.10)
        assert not comparison["regressions"]
        assert not comparison["improvements"]

    def test_caveats_on_context_change(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _write_history(path, [
            _record(),
            _record(engine="compiled", cpu_count=1),
        ])
        comparison = compare_last_two(str(path))
        caveats = "\n".join(comparison["caveats"])
        assert "engine changed" in caveats
        assert "cpu_count changed" in caveats

    def test_compares_only_shared_numeric_rates(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _write_history(path, [
            _record(sweep_points_per_sec_serial=None,
                    only_old_per_sec=10.0),
            _record(sweep_points_per_sec_serial=12.0),
        ])
        metrics = {row["metric"]
                   for row in compare_last_two(str(path))["rows"]}
        assert "only_old_per_sec" not in metrics
        assert "sweep_points_per_sec_serial" not in metrics  # old is None
        assert "engine_events_per_sec" in metrics

    def test_threshold_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="threshold"):
            compare_last_two(str(tmp_path / "x"), threshold=0.0)


class TestAppendHistoryStamps:
    def test_record_carries_engine_and_batch_window(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record = append_history(
            {"engine": "compiled", "batch_window": 32,
             "engine_dispatch": {"events_per_sec": 1.0}},
            str(path),
        )
        assert record["engine"] == "compiled"
        assert record["batch_window"] == 32
        assert read_history(str(path))[0]["engine"] == "compiled"


class TestSingleCoreSweepSkew:
    def test_parallel_cells_skipped_on_single_core(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        result = bench_sweep_scale(seeds=2, duration=0.005, jobs=(2,))
        assert result["parallel"] == []
        assert "oversubscription" in result["parallel_skipped"]

    def test_force_parallel_stamps_cells(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        result = bench_sweep_scale(seeds=2, duration=0.005, jobs=(2,),
                                   force_parallel=True)
        assert "parallel_skipped" not in result
        (cell,) = result["parallel"]
        assert cell["forced_parallel"] is True
        assert cell["bit_identical_to_serial"] is True

    def test_multi_core_hosts_unaffected(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        result = bench_sweep_scale(seeds=2, duration=0.005, jobs=(2,))
        assert "parallel_skipped" not in result
        (cell,) = result["parallel"]
        assert "forced_parallel" not in cell


class TestProfileBench:
    def test_reports_per_kind_without_writing_baselines(self, tmp_path,
                                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        reports = profile_hotpath_bench(
            top_n=5, micro_events=5_000, duration=0.05,
            include_sweep_scale=False, include_constellation_scale=False,
        )
        assert set(reports) == {"engine_dispatch", "saturated_throughput"}
        for report in reports.values():
            assert "cumulative" in report
        assert not (tmp_path / "BENCH_hotpath.json").exists()
        assert not (tmp_path / "BENCH_history.jsonl").exists()


class TestCompareCli:
    def test_compare_ok_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write_history(path, [_record(), _record(git_commit="bbbb")])
        code = main(["bench-baseline", "--compare",
                     "--history", str(path)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_strict_regression_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write_history(path, [
            _record(),
            _record(engine_events_per_sec=100_000.0),
        ])
        assert main(["bench-baseline", "--compare",
                     "--history", str(path)]) == 0
        assert main(["bench-baseline", "--compare", "--strict",
                     "--history", str(path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_history_is_nonfatal_unless_strict(self, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["bench-baseline", "--compare",
                     "--history", missing]) == 0
        assert main(["bench-baseline", "--compare", "--strict",
                     "--history", missing]) == 2

    def test_profile_flag_prints_reports(self, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["bench-baseline", "--profile", "--profile-top", "5",
                     "--micro-events", "5000", "--duration", "0.05",
                     "--skip-sweep-scale", "--skip-constellation-scale"])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile: engine_dispatch" in out
        assert "no baseline written" in out
        assert not (tmp_path / "BENCH_hotpath.json").exists()


def test_engine_backend_is_stamped_somewhere_real():
    """The stamp the history rows carry must be the live selector."""
    assert engine_backend() in ("pure", "compiled")

"""Tests for the tuning recommender and the NBDT closed-form model."""

from __future__ import annotations

import pytest

from repro.analysis import nbdt as nbdt_model
from repro.analysis import tuning
from repro.analysis.errorprobs import frame_error_probability
from repro.experiments.runner import measure_batch_transfer, measure_saturated
from repro.workloads import preset


class TestCheckpointIntervalRule:
    def test_wait_budget_respected(self):
        rtt, p_c = 0.03, 1e-6
        w_cp = tuning.recommended_checkpoint_interval(rtt, p_c, wait_budget=0.1)
        n_cp = 1 / (1 - p_c)
        wait = (n_cp - 0.5) * w_cp
        assert wait == pytest.approx(0.1 * rtt, rel=1e-6)

    def test_scales_with_rtt(self):
        short = tuning.recommended_checkpoint_interval(0.01, 0.0)
        long = tuning.recommended_checkpoint_interval(0.06, 0.0)
        assert long == pytest.approx(6 * short)

    def test_validation(self):
        with pytest.raises(ValueError):
            tuning.recommended_checkpoint_interval(0.0, 0.0)
        with pytest.raises(ValueError):
            tuning.recommended_checkpoint_interval(0.01, 0.0, wait_budget=1.0)


class TestCumulationDepthRule:
    def test_epsilon_rule(self):
        # P_C = 1e-3, epsilon = 1e-9 -> need 3 reports.
        depth = tuning.recommended_cumulation_depth(0.005, p_c=1e-3, epsilon=1e-9)
        assert depth == 3

    def test_burst_coverage_rule(self):
        depth = tuning.recommended_cumulation_depth(0.005, p_c=1e-9, mean_burst=0.018)
        assert depth * 0.005 > 0.018

    def test_minimum_depth_two(self):
        assert tuning.recommended_cumulation_depth(0.005, p_c=0.0) == 2

    def test_detection_budget_conflict(self):
        with pytest.raises(ValueError, match="budget"):
            tuning.recommended_cumulation_depth(
                0.01, p_c=1e-9, mean_burst=0.2, detection_budget=0.05
            )


class TestRecommendConfig:
    def test_recommendation_is_valid_and_near_optimal_frame(self):
        config, rationale = tuning.recommend_config(
            bit_rate=300e6, distance_km=5000, iframe_ber=1e-6
        )
        # validate_for_link already ran inside; spot-check the pieces.
        assert config.numbering_size >= 2 * rationale["numbering_rule"].count("") * 0
        assert 4096 <= config.iframe_payload_bits <= 16_384  # near sqrt(h/BER)
        assert rationale["failure_detection_latency"] == pytest.approx(
            config.cumulation_depth * config.checkpoint_interval
        )

    def test_burst_coverage_threaded_through(self):
        config, _ = tuning.recommend_config(
            bit_rate=300e6, distance_km=5000, mean_burst=0.02
        )
        assert config.cumulation_depth * config.checkpoint_interval > 0.02

    def test_overrides_passed(self):
        config, _ = tuning.recommend_config(
            bit_rate=300e6, distance_km=5000, zero_duplication=True
        )
        assert config.zero_duplication

    def test_recommended_config_runs_cleanly(self):
        """The recommended configuration must actually work end-to-end."""
        config, _ = tuning.recommend_config(
            bit_rate=300e6, distance_km=5000, iframe_ber=1e-5, cframe_ber=1e-7
        )
        scenario = preset("noisy").with_(
            iframe_payload_bits=config.iframe_payload_bits,
            checkpoint_interval=config.checkpoint_interval,
            cumulation_depth=config.cumulation_depth,
            numbering_bits=config.numbering_bits,
        )
        result = measure_batch_transfer(scenario, "lams", 1000, seed=3, max_time=60.0)
        assert result["completed"]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            tuning.recommend_config(bit_rate=0, distance_km=5000)


class TestNbdtModel:
    def params(self):
        return preset("noisy").model_parameters()

    def test_continuous_efficiency_formula(self):
        params = self.params()
        assert nbdt_model.continuous_efficiency(params) == pytest.approx(1 - params.p_f)

    def test_continuous_matches_simulation(self):
        scenario = preset("noisy")
        measured = measure_saturated(scenario, "nbdt-continuous", 1.5, seed=4)
        predicted = nbdt_model.continuous_efficiency(scenario.model_parameters())
        assert measured["efficiency"] == pytest.approx(predicted, rel=0.05)

    def test_continuous_holding_matches_simulation(self):
        scenario = preset("noisy")
        measured = measure_saturated(scenario, "nbdt-continuous", 1.5, seed=4)
        report_period = 64 * scenario.iframe_time
        predicted = nbdt_model.continuous_holding_time(
            scenario.model_parameters(), report_period
        )
        assert measured["mean_holding_time"] == pytest.approx(predicted, rel=0.25)

    def test_multiphase_bulk_transfer_matches_model(self):
        """Multiphase is a *bulk* protocol: with the whole batch present
        up-front the phase amortisation matches the model."""
        scenario = preset("noisy")
        n = 2000
        result = measure_batch_transfer(
            scenario, "nbdt-multiphase", n, seed=5, max_time=60.0
        )
        predicted = nbdt_model.multiphase_transfer_time(scenario.model_parameters(), n)
        assert result["completed"]
        assert result["duration"] == pytest.approx(predicted, rel=0.30)

    def test_multiphase_efficiency_increases_with_batch(self):
        params = self.params()
        small = nbdt_model.multiphase_efficiency(params, 100)
        large = nbdt_model.multiphase_efficiency(params, 100_000)
        assert large > small

    def test_validation(self):
        params = self.params()
        with pytest.raises(ValueError):
            nbdt_model.continuous_holding_time(params, 0.0)
        with pytest.raises(ValueError):
            nbdt_model.multiphase_transfer_time(params, 0)

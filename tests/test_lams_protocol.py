"""Integration tests for the LAMS-DLC protocol over simulated links.

These exercise the protocol's headline guarantees:

- zero loss under frame corruption, control-frame corruption, gap
  losses, and link outages (the paper's core claim);
- implicit positive acknowledgement via checkpoint coverage;
- retransmission exactly once per NAK notification, with renumbering;
- enforced recovery and failure declaration timing;
- Stop-Go flow control reducing the sending rate.
"""

from __future__ import annotations

import pytest

from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    PerfectChannel,
    Simulator,
    StreamRegistry,
    Tracer,
)

RATE = 100e6
DELAY = 0.010
RTT = 2 * DELAY


def build(
    sim,
    iframe_ber=0.0,
    cframe_ber=0.0,
    seed=1,
    config=None,
    deliver=None,
    delivery_interval=None,
    tracer=None,
):
    link = FullDuplexLink(
        sim,
        bit_rate=RATE,
        propagation_delay=DELAY,
        name="t",
        iframe_errors=BernoulliChannel(iframe_ber) if iframe_ber else PerfectChannel(),
        cframe_errors=BernoulliChannel(cframe_ber) if cframe_ber else PerfectChannel(),
        streams=StreamRegistry(seed=seed),
        tracer=tracer,
    )
    config = config or LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
    delivered = []
    a, b = lams_dlc_pair(
        sim, link, config, tracer=tracer,
        deliver_b=deliver or delivered.append,
        delivery_interval_b=delivery_interval,
    )
    a.start(send=True, receive=False)
    b.start(send=False, receive=True)
    return link, a, b, delivered


def transfer(sim, endpoint, n):
    for i in range(n):
        assert endpoint.accept(("pkt", i))


class TestCleanChannel:
    def test_all_frames_delivered_in_order(self):
        sim = Simulator()
        _, a, b, delivered = build(sim)
        transfer(sim, a, 500)
        sim.run(until=2.0)
        assert [p[1] for p in delivered] == list(range(500))
        assert a.sender.retransmissions == 0

    def test_sender_buffer_fully_released(self):
        sim = Simulator()
        _, a, b, delivered = build(sim)
        transfer(sim, a, 100)
        sim.run(until=2.0)
        assert a.sender.unresolved_count == 0
        assert a.sender.releases == 100

    def test_holding_time_close_to_model(self):
        """Clean channel: holding ≈ R + t_f + t_c + t_proc + I_cp/2."""
        sim = Simulator()
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        _, a, b, delivered = build(sim, config=config)
        transfer(sim, a, 2000)
        sim.run(until=2.0)
        t_f = config.iframe_bits / RATE
        expected = RTT + t_f + 0.5 * config.checkpoint_interval
        assert a.sender.mean_holding_time == pytest.approx(expected, rel=0.15)

    def test_no_spurious_failure_on_idle_link(self):
        sim = Simulator()
        _, a, b, delivered = build(sim)
        sim.run(until=5.0)  # nothing to send; checkpoints keep flowing
        assert not a.sender.failed
        assert a.sender.request_naks_sent == 0


class TestErrorRecovery:
    def test_zero_loss_with_iframe_errors(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, iframe_ber=5e-6, seed=3)
        transfer(sim, a, 3000)
        sim.run(until=10.0)
        assert sorted(p[1] for p in delivered) == list(range(3000))
        assert a.sender.retransmissions > 0

    def test_zero_loss_with_control_errors_too(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, iframe_ber=5e-6, cframe_ber=1e-4, seed=4)
        transfer(sim, a, 3000)
        sim.run(until=10.0)
        assert sorted(set(p[1] for p in delivered)) == list(range(3000))

    def test_exactly_once_without_outage(self):
        """Without outages/enforced recovery, no duplicates either."""
        sim = Simulator()
        _, a, b, delivered = build(sim, iframe_ber=5e-6, cframe_ber=1e-5, seed=5)
        transfer(sim, a, 2000)
        sim.run(until=10.0)
        ids = [p[1] for p in delivered]
        assert sorted(ids) == list(range(2000))
        assert len(ids) == len(set(ids))

    def test_retransmissions_scale_with_error_probability(self):
        results = {}
        for ber in (1e-6, 1e-5):
            sim = Simulator()
            _, a, b, delivered = build(sim, iframe_ber=ber, seed=6)
            transfer(sim, a, 3000)
            sim.run(until=10.0)
            results[ber] = a.sender.retransmissions
        assert results[1e-5] > 3 * results[1e-6]

    def test_retransmission_gets_new_sequence_number(self):
        sim = Simulator()
        tracer = Tracer(record_timeline=True)
        _, a, b, delivered = build(sim, iframe_ber=3e-5, seed=7, tracer=tracer)
        transfer(sim, a, 500)
        sim.run(until=5.0)
        # Every requeue is followed by a send with a *different* seq:
        requeues = tracer.timeline(event="requeue")
        assert requeues, "expected some retransmissions at this BER"
        # All frames delivered despite renumbering.
        assert sorted(p[1] for p in delivered) == list(range(500))

    def test_nak_for_unknown_seq_is_ignored(self):
        """Cumulative NAKs repeat; the second report must not retransmit again."""
        sim = Simulator()
        config = LamsDlcConfig(checkpoint_interval=0.002, cumulation_depth=5)
        _, a, b, delivered = build(sim, iframe_ber=2e-5, seed=8, config=config)
        transfer(sim, a, 1000)
        sim.run(until=10.0)
        ids = [p[1] for p in delivered]
        # Exactly once even though each error was reported up to 5 times.
        assert sorted(ids) == list(range(1000))
        assert len(ids) == len(set(ids))

    def test_header_unprotected_mode_still_zero_loss(self):
        """With unreadable corrupt headers, gap/trailing detection recovers."""
        sim = Simulator()
        config = LamsDlcConfig(
            checkpoint_interval=0.005, cumulation_depth=3, header_protected=False
        )
        _, a, b, delivered = build(sim, iframe_ber=2e-5, seed=9, config=config)
        transfer(sim, a, 1000)
        sim.run(until=15.0)
        assert sorted(set(p[1] for p in delivered)) == list(range(1000))


class TestCheckpointMechanics:
    def test_checkpoints_flow_periodically(self):
        sim = Simulator()
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        _, a, b, delivered = build(sim, config=config)
        sim.run(until=1.0)
        # ~200 checkpoints in 1 s at 5 ms intervals.
        assert 150 <= b.receiver.checkpoints_sent <= 210

    def test_release_waits_for_covering_checkpoint(self):
        sim = Simulator()
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        _, a, b, delivered = build(sim, config=config)
        transfer(sim, a, 1)
        # Frame arrives ~0.010; covering checkpoint issued ≤0.015, reaches
        # sender ≤0.0252. Release cannot precede frame arrival + R/2.
        sim.run(until=0.020)
        assert a.sender.releases == 0
        sim.run(until=0.040)
        assert a.sender.releases == 1

    def test_corrupted_checkpoint_ignored(self):
        sim = Simulator()
        # Control frames always corrupted on the reverse path: sender can
        # never release or see NAKs; eventually it suspects failure.
        _, a, b, delivered = build(sim, cframe_ber=1.0)
        transfer(sim, a, 10)
        sim.run(until=0.1)
        assert a.sender.releases == 0
        assert a.sender.checkpoints_corrupted > 0


class TestEnforcedRecovery:
    def test_outage_triggers_request_nak_and_recovers(self):
        sim = Simulator()
        link, a, b, delivered = build(sim, seed=11)
        transfer(sim, a, 2000)
        sim.schedule_at(0.030, link.down)
        sim.schedule_at(0.045, link.up)
        sim.run(until=10.0)
        assert a.sender.request_naks_sent >= 1
        assert not a.sender.failed
        assert sorted(set(p[1] for p in delivered)) == list(range(2000))

    def test_permanent_outage_declares_failure(self):
        sim = Simulator()
        failures = []
        link = FullDuplexLink(
            sim, bit_rate=RATE, propagation_delay=DELAY,
            streams=StreamRegistry(seed=1),
        )
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        a, b = lams_dlc_pair(
            sim, link, config, on_failure_a=lambda: failures.append(sim.now)
        )
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        transfer(sim, a, 100)
        sim.schedule_at(0.050, link.down)
        sim.run(until=5.0)
        assert a.sender.failed
        assert len(failures) == 1
        # Failure time: last checkpoint + C_depth*W_cp (timer) + budget.
        budget = RTT + config.processing_time + config.checkpoint_timeout
        assert failures[0] == pytest.approx(0.050 + 0.015 + budget, abs=0.02)
        # Zero loss: undelivered frames still held for the network layer.
        held = {p[1] for p in a.sender.held_payloads()}
        assert len(held) + a.sender.releases == 100

    def test_failure_within_link_lifetime_budget(self):
        """Unrecoverable failure (not enough lifetime left) fails fast."""
        sim = Simulator()
        config = LamsDlcConfig(
            checkpoint_interval=0.005, cumulation_depth=3, link_lifetime=0.060
        )
        link = FullDuplexLink(
            sim, bit_rate=RATE, propagation_delay=DELAY,
            streams=StreamRegistry(seed=1),
        )
        a, b = lams_dlc_pair(sim, link, config)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        transfer(sim, a, 10)
        sim.schedule_at(0.030, link.down)
        sim.run(until=5.0)
        assert a.sender.failed
        # No probe: remaining lifetime could not fit the response budget.
        assert a.sender.request_naks_sent == 0

    def test_dead_receiver_detected_from_start(self):
        sim = Simulator()
        link = FullDuplexLink(
            sim, bit_rate=RATE, propagation_delay=DELAY,
            streams=StreamRegistry(seed=1),
        )
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        a, b = lams_dlc_pair(sim, link, config)
        a.start(send=True, receive=False)
        # b never started: no checkpoints ever.
        transfer(sim, a, 5)
        sim.run(until=5.0)
        assert a.sender.failed

    def test_new_frames_blocked_while_suspended(self):
        sim = Simulator()
        tracer = Tracer(record_timeline=True)
        link, a, b, delivered = build(sim, seed=12, tracer=tracer)
        transfer(sim, a, 50)
        sim.schedule_at(0.020, link.down)
        sim.schedule_at(0.200, link.up)
        sim.run(until=10.0)
        # While the outage lasted the sender probed, stopped new frames,
        # and resumed afterwards; all frames ultimately delivered.
        assert a.sender.request_naks_sent >= 1
        assert sorted(set(p[1] for p in delivered)) == list(range(50))


class TestFlowControl:
    def test_stop_go_reduces_sender_rate(self):
        sim = Simulator()
        config = LamsDlcConfig(
            checkpoint_interval=0.005,
            cumulation_depth=3,
            receive_queue_capacity=None,
            receive_high_watermark=16,
            receive_low_watermark=4,
        )
        # Receiver drains slowly: 1 frame per 200 µs while frames arrive
        # every ~83 µs — the queue builds and Stop-Go kicks in.
        _, a, b, delivered = build(
            sim, config=config, delivery_interval=200e-6, seed=13
        )
        transfer(sim, a, 3000)
        sim.run(until=1.0)
        assert a.sender.flow.stop_indications > 0
        assert a.sender.flow.min_fraction_seen < 1.0

    def test_overflow_discard_is_recovered(self):
        """Discarded-on-overflow frames are NAK'd and retransmitted."""
        sim = Simulator()
        config = LamsDlcConfig(
            checkpoint_interval=0.005,
            cumulation_depth=3,
            receive_queue_capacity=32,
            receive_high_watermark=16,
            receive_low_watermark=4,
        )
        _, a, b, delivered = build(
            sim, config=config, delivery_interval=150e-6, seed=14
        )
        transfer(sim, a, 2000)
        sim.run(until=30.0)
        assert b.receiver.discards > 0
        assert sorted(set(p[1] for p in delivered)) == list(range(2000))

    def test_rate_recovers_after_congestion_clears(self):
        sim = Simulator()
        config = LamsDlcConfig(
            checkpoint_interval=0.005, cumulation_depth=3,
            receive_high_watermark=16, receive_low_watermark=4,
        )
        _, a, b, delivered = build(
            sim, config=config, delivery_interval=200e-6, seed=15
        )
        transfer(sim, a, 500)
        sim.run(until=5.0)  # long after the batch drained
        assert a.sender.flow.rate_fraction == 1.0


class TestNumberingValidation:
    def test_undersized_numbering_raises_exhaustion(self):
        """A numbering space below the paper's bound fails loudly."""
        from repro.core.seqspace import SequenceExhausted

        sim = Simulator()
        config = LamsDlcConfig(
            checkpoint_interval=0.050, cumulation_depth=3, numbering_bits=5
        )
        _, a, b, delivered = build(sim, config=config)
        transfer(sim, a, 500)
        with pytest.raises(SequenceExhausted):
            sim.run(until=2.0)

    def test_config_validator_predicts_exhaustion(self):
        config = LamsDlcConfig(
            checkpoint_interval=0.050, cumulation_depth=3, numbering_bits=5
        )
        with pytest.raises(ValueError):
            config.validate_for_link(round_trip_time=RTT, bit_rate=RATE)

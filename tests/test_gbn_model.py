"""Tests for the Go-Back-N closed-form model and its simulation agreement."""

from __future__ import annotations

import pytest

from repro.analysis import gbn
from repro.analysis import hdlc as hdlc_model
from repro.analysis import lams as lams_model
from repro.workloads import preset


def params(**overrides):
    return preset("noisy").with_(**overrides).model_parameters()


class TestGbnModel:
    def test_pipeline_frames(self):
        p = params()
        assert gbn.pipeline_frames(p) == pytest.approx(
            p.round_trip_time / p.iframe_time + 1.0
        )

    def test_error_free_is_perfect(self):
        p = params(iframe_ber=0.0, cframe_ber=0.0)
        assert gbn.s_bar_gbn(p) == pytest.approx(1.0)
        assert gbn.throughput_efficiency_gbn(p) == pytest.approx(1.0)

    def test_three_tier_ordering(self):
        """GBN < SR-HDLC < LAMS-DLC at the paper's noisy point."""
        p = params()
        eta_gbn = gbn.throughput_efficiency_gbn(p)
        eta_sr = hdlc_model.throughput_efficiency(p, 50_000)
        eta_lams = lams_model.throughput_efficiency(p, 50_000)
        assert eta_gbn < eta_sr < eta_lams

    def test_degrades_with_error_rate(self):
        clean = gbn.throughput_efficiency_gbn(params(iframe_ber=1e-7))
        dirty = gbn.throughput_efficiency_gbn(params(iframe_ber=1e-5))
        assert dirty < clean

    def test_degrades_with_distance(self):
        """The discard waste grows with the pipeline (Section 2.3)."""
        near = gbn.throughput_efficiency_gbn(params(distance_km=2000.0))
        far = gbn.throughput_efficiency_gbn(params(distance_km=10_000.0))
        assert far < near

    def test_simulation_agreement_order_of_magnitude(self):
        """The executable GBN's retransmission inflation matches the model."""
        from repro.experiments.runner import measure_batch_transfer

        scenario = preset("nominal").with_(window_size=64, iframe_ber=1e-5)
        result = measure_batch_transfer(
            scenario, "gbn", 2000, seed=5, max_time=300.0
        )
        assert result["completed"]
        measured_sbar = result["iframes_sent"] / result["delivered"]
        predicted_sbar = gbn.s_bar_gbn(scenario.model_parameters())
        # The model assumes an always-open pipeline; the windowed
        # implementation wastes less. Same order of magnitude.
        assert measured_sbar > 1.01
        assert measured_sbar < 3 * predicted_sbar

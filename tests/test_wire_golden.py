"""Golden-frame byte fixtures for the wire codec.

The UDP transport backend makes the wire format an *interoperability*
surface: two independently started processes must agree on every byte.
These fixtures pin the exact encodings so an accidental format change
(field width, ordering, CRC placement) fails loudly instead of silently
breaking ``serve`` / ``transmit --connect`` across versions.

The hex strings were produced by the codec itself at the time the
format was frozen; they are the contract now, not the code.
"""

from __future__ import annotations

import pytest

from repro.core.frames import CheckpointFrame, IFrame, RequestNakFrame
from repro.core.wire import (
    WireFormatError,
    decode_checkpoint,
    decode_frame,
    decode_iframe,
    decode_request_nak,
    encode_checkpoint,
    encode_frame,
    encode_iframe,
    encode_request_nak,
)
from repro.transport.impair import corrupt_crc

GOLDEN_IFRAME = bytes.fromhex(
    "010000070000002a000000280006676f6c64656e1bc5c356"
)
GOLDEN_CHECKPOINT = bytes.fromhex(
    "0205000000033ff40000000000000000002900020005000986f7"
)
GOLDEN_REQUEST_NAK = bytes.fromhex("0340040000000000000220")


def golden_iframe() -> IFrame:
    return IFrame(seq=7, payload=b"golden", size_bits=2128,
                  transmit_index=42, origin=40)


def golden_checkpoint() -> CheckpointFrame:
    return CheckpointFrame(cp_index=3, issue_time=1.25, naks=(5, 9),
                           frontier=41, enforced=True, stop_go=False,
                           size_bits=128)


class TestGoldenEncodings:
    def test_iframe_bytes_are_stable(self):
        data = encode_iframe(golden_iframe(), b"golden", origin=40)
        assert data == GOLDEN_IFRAME

    def test_checkpoint_bytes_are_stable(self):
        assert encode_checkpoint(golden_checkpoint()) == GOLDEN_CHECKPOINT

    def test_request_nak_bytes_are_stable(self):
        frame = RequestNakFrame(request_time=2.5, size_bits=64)
        assert encode_request_nak(frame) == GOLDEN_REQUEST_NAK

    def test_encode_frame_dispatches_identically(self):
        assert encode_frame(golden_iframe(), b"golden") == GOLDEN_IFRAME
        assert encode_frame(golden_checkpoint()) == GOLDEN_CHECKPOINT


class TestGoldenDecodings:
    def test_iframe_fields(self):
        frame, payload, origin = decode_iframe(GOLDEN_IFRAME)
        assert frame.seq == 7
        assert frame.transmit_index == 42
        assert payload == b"golden"
        assert origin == 40

    def test_checkpoint_fields(self):
        frame = decode_checkpoint(GOLDEN_CHECKPOINT)
        assert frame.cp_index == 3
        assert frame.issue_time == 1.25
        assert frame.naks == (5, 9)
        assert frame.frontier == 41
        assert frame.enforced is True
        assert frame.stop_go is False

    def test_request_nak_fields(self):
        frame = decode_request_nak(GOLDEN_REQUEST_NAK)
        assert frame.request_time == 2.5

    def test_decode_frame_dispatches(self):
        frame = decode_frame(GOLDEN_CHECKPOINT)
        assert isinstance(frame, CheckpointFrame)
        frame = decode_frame(GOLDEN_REQUEST_NAK)
        assert isinstance(frame, RequestNakFrame)


class TestSalvageDecoding:
    """verify=False: parse the header of a CRC-damaged frame.

    The UDP receive path uses this to reproduce the DES semantics of
    "corrupted frame with a readable header" — the frame reaches the
    protocol with corrupted=True instead of vanishing.
    """

    def test_corrupt_crc_flips_only_the_trailer(self):
        damaged = corrupt_crc(GOLDEN_CHECKPOINT)
        assert damaged != GOLDEN_CHECKPOINT
        assert damaged[:-1] == GOLDEN_CHECKPOINT[:-1]

    def test_strict_decode_rejects_damaged_frame(self):
        with pytest.raises(WireFormatError):
            decode_frame(corrupt_crc(GOLDEN_CHECKPOINT))

    def test_salvage_decode_recovers_header(self):
        frame = decode_frame(corrupt_crc(GOLDEN_CHECKPOINT), verify=False)
        assert isinstance(frame, CheckpointFrame)
        assert frame.cp_index == 3
        assert frame.naks == (5, 9)

    def test_salvage_decode_recovers_iframe_payload_bytes(self):
        frame, payload, origin = decode_iframe(
            corrupt_crc(GOLDEN_IFRAME), verify=False)
        assert frame.seq == 7
        assert payload == b"golden"
        assert origin == 40

    def test_short_input_raises_cleanly(self):
        for data in (b"", b"\x01", GOLDEN_IFRAME[:5]):
            with pytest.raises(WireFormatError):
                decode_frame(data)

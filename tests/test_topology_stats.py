"""Property tests for the constellation statistics rollup.

The claim ``docs/TOPOLOGY.md`` makes — the network rollup equals the
statistics of every per-link sample pooled into one stream — is the
Chan et al. merge's exactness property, verified here over arbitrary
sample partitions.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.experiments.sweeps import StreamingSummary
from repro.topology.stats import LinkStats, network_rollup


class _Channel:
    def __init__(self, frames_sent=0, frames_corrupted=0, frames_lost_outage=0):
        self.frames_sent = frames_sent
        self.frames_corrupted = frames_corrupted
        self.frames_lost_outage = frames_lost_outage

    def utilization(self, now=None):
        return 0.0


class _Link:
    """The slice of FullDuplexLink that LinkStats reads."""

    def __init__(self, sent=0):
        self.forward = _Channel(frames_sent=sent)
        self.reverse = _Channel()


delays = st.floats(min_value=0.0, max_value=10.0,
                   allow_nan=False, allow_infinity=False)
partitions = st.lists(st.lists(delays, max_size=40), min_size=1, max_size=8)


@settings(max_examples=60, deadline=None)
@given(partitions)
def test_rollup_delay_equals_pooled_stream(partition):
    """Merging per-link delay streams == one stream over all samples."""
    stats = []
    for index, samples in enumerate(partition):
        link_stats = LinkStats(f"l{index}", _Link(sent=len(samples)))
        for delay in samples:
            link_stats.record_delivery(delay)
        stats.append(link_stats)
    rollup = network_rollup(stats)

    pooled = StreamingSummary.from_samples(
        "pooled", [delay for samples in partition for delay in samples]
    )
    assert rollup["delay_count"] == pooled.count
    assert math.isclose(rollup["delay_mean"], pooled.mean,
                        rel_tol=1e-9, abs_tol=1e-12)
    assert math.isclose(rollup["delay_stdev"], pooled.stdev,
                        rel_tol=1e-6, abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000),
                min_size=1, max_size=8))
def test_rollup_counters_sum_exactly(frame_counts):
    stats = []
    for index, frames in enumerate(frame_counts):
        link_stats = LinkStats(f"l{index}", _Link(sent=frames))
        for _ in range(frames % 5):
            link_stats.record_delivery()
        link_stats.observe_buffered(frames)
        stats.append(link_stats)
    rollup = network_rollup(stats)
    assert rollup["links"] == len(frame_counts)
    assert rollup["frames_sent"] == sum(frame_counts)
    assert rollup["payloads_delivered"] == sum(f % 5 for f in frame_counts)
    assert rollup["peak_buffered_max"] == max(frame_counts)


def test_extra_streams_are_reported():
    extra = StreamingSummary.from_samples("e2e_delay", [1.0, 2.0, 3.0])
    rollup = network_rollup([], extra_streams={"e2e_delay": extra})
    assert rollup["e2e_delay_count"] == 3
    assert math.isclose(rollup["e2e_delay_mean"], 2.0)

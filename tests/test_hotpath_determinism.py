"""Perf-work correctness contract: observers never change results.

The hot-path overhaul made ``Tracer.emit`` near-free when nobody is
listening (the ``active`` fast path), buffered RNG draws in the error
models, and inlined scheduling at the per-frame call sites.  All of it
rests on one invariant: a seeded simulation computes *bit-identical*
results no matter which observers are attached — a timeline, a
listener, or nothing at all.  These are the regression tests for that
invariant; if an optimisation ever makes an emit (or an RNG draw)
conditional on observability, they break.
"""

from __future__ import annotations

import pytest

from repro.workloads.generators import SaturatedSource
from repro.workloads.scenarios import build_simulation, preset


def _run(scenario_name: str, *, seed: int, record_timeline: bool,
         attach_listener: bool, duration: float = 0.2):
    scenario = preset(scenario_name)
    setup = build_simulation(scenario, "lams", seed=seed)
    if record_timeline:
        setup.tracer.record_timeline = True
    records = []
    if attach_listener:
        setup.tracer.listeners.append(records.append)
    sender = setup.endpoint_a.sender
    source = SaturatedSource(
        setup.sim, setup.endpoint_a,
        backlog_fn=lambda: sender.pending_count,
        low_water=64, chunk=128,
        poll_interval=scenario.iframe_time * 64,
    )
    source.start()
    setup.sim.run(until=duration)
    outcome = {
        "summary": setup.tracer.summary(),
        "delivered": len(setup.delivered),
        "event_count": setup.sim.event_count,
        "iframes_sent": sender.iframes_sent,
        "retransmissions": sender.retransmissions,
        "frames_fwd": setup.link.forward.frames_sent,
        "corrupted_fwd": setup.link.forward.frames_corrupted,
    }
    return outcome, len(records)


@pytest.mark.parametrize("scenario_name", ["nominal", "noisy"])
def test_observers_do_not_change_outcomes(scenario_name):
    bare, bare_records = _run(
        scenario_name, seed=3, record_timeline=False, attach_listener=False
    )
    timeline, _ = _run(
        scenario_name, seed=3, record_timeline=True, attach_listener=False
    )
    listened, listened_records = _run(
        scenario_name, seed=3, record_timeline=False, attach_listener=True
    )
    both, _ = _run(
        scenario_name, seed=3, record_timeline=True, attach_listener=True
    )
    assert bare == timeline == listened == both
    # The observer configurations really differed.
    assert bare_records == 0
    assert listened_records > 0


def test_same_seed_is_bit_identical():
    first, _ = _run("noisy", seed=11, record_timeline=False, attach_listener=False)
    second, _ = _run("noisy", seed=11, record_timeline=False, attach_listener=False)
    assert first == second
    # Sanity: the noisy scenario actually exercised the error path, so
    # the RNG draw buffering is covered by the equality above.
    assert first["corrupted_fwd"] > 0


def test_different_seeds_diverge():
    first, _ = _run("noisy", seed=11, record_timeline=False, attach_listener=False)
    other, _ = _run("noisy", seed=12, record_timeline=False, attach_listener=False)
    assert first != other

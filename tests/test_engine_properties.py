"""Hypothesis property tests for the discrete-event engine."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import Simulator


class TestSchedulingProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    def test_callbacks_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=100))
    def test_equal_times_fire_fifo(self, delays):
        """Events at identical times run in scheduling order."""
        sim = Simulator()
        fired = []
        quantised = [round(d, 0) for d in delays]  # force many collisions
        for index, delay in enumerate(quantised):
            sim.schedule(delay, fired.append, (delay, index))
        sim.run()
        # Sort stability: within each time, indices ascend.
        for time in set(quantised):
            indices = [i for (t, i) in fired if t == time]
            assert indices == sorted(indices)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0),
                st.floats(min_value=0.0, max_value=1000.0),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_nested_scheduling_never_goes_backwards(self, pairs):
        """Callbacks scheduling further callbacks keep the clock monotone."""
        sim = Simulator()
        observed = []

        def outer(extra):
            observed.append(sim.now)
            sim.schedule(extra, lambda: observed.append(sim.now))

        for first, second in pairs:
            sim.schedule(first, outer, second)
        sim.run()
        assert observed == sorted(observed)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_run_until_partitions_execution(self, delays, boundary):
        """run(until=b); run() fires every event exactly once, in order."""
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, fired.append, delay)
        sim.run(until=boundary)
        assert all(value <= boundary for value in fired)
        sim.run()
        assert sorted(fired) == sorted(delays)


class TestTimerProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["start", "cancel"]),
                      st.floats(min_value=0.01, max_value=10.0)),
            min_size=1, max_size=40,
        )
    )
    def test_timer_fires_iff_last_op_was_uncancelled_start(self, operations):
        """Under any start/cancel sequence (applied at t=0), the timer
        fires exactly once iff the final operation was a start."""
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        last = None
        for op, delay in operations:
            if op == "start":
                timer.start(delay)
                last = delay
            else:
                timer.cancel()
                last = None
        sim.run()
        if last is None:
            assert fired == []
        else:
            assert fired == [last]

    @given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=20))
    def test_sequential_restarts_fire_once_per_cycle(self, delays):
        """start → run → start → run …: one firing per cycle, at the
        cumulative deadline."""
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        expected = []
        now = 0.0
        for delay in delays:
            timer.start(delay)
            expected.append(now + delay)
            sim.run()
            now = sim.now
        assert len(fired) == len(expected)
        for got, want in zip(fired, expected):
            assert abs(got - want) < 1e-9


class TestProcessProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=30))
    def test_process_time_accumulates_exactly(self, waits):
        sim = Simulator()
        ticks = []

        def proc():
            for wait in waits:
                yield sim.timeout(wait)
                ticks.append(sim.now)

        sim.process(proc())
        sim.run()
        cumulative = []
        total = 0.0
        for wait in waits:
            total += wait
            cumulative.append(total)
        for got, want in zip(ticks, cumulative):
            assert abs(got - want) < 1e-6 * max(1.0, want)

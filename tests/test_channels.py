"""Time-varying channels: trace replay, orbit coupling, feedback asymmetry.

Also the error-model registry regression suite for the fixes shipped
alongside the channel subsystem: per-generator Bernoulli draw buffers,
the Gilbert–Elliott FIFO-time guard, the factory-signature cache, and
tuple-spec validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.simulator.channels import (
    OrbitCoupledChannel,
    RecordingChannel,
    TraceReplayChannel,
    delivered_digest,
    load_trace,
    replay_trace,
    synthesize_trace,
    write_trace,
)
from repro.simulator.errormodel import (
    BernoulliChannel,
    GilbertElliottChannel,
    PerfectChannel,
    available_error_models,
    error_model_factory,
    make_error_model,
    register_error_model,
    resolve_error_model,
    resolve_link_error_models,
)
from repro.simulator.orbit import IsolatedLinkGeometry, Satellite
from repro.workloads.scenarios import preset

GE_PARAMS = {
    "good_ber": 1e-7, "bad_ber": 1e-4, "mean_good": 0.02, "mean_bad": 0.004,
}


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


# ---------------------------------------------------------------------------
# Trace replay
# ---------------------------------------------------------------------------


class TestTraceReplayChannel:
    def test_frame_mode_pops_decisions_without_rng(self):
        channel = TraceReplayChannel(records=[False, True, False], mode="frame")
        rng = _rng(1)
        before = rng.bit_generator.state
        assert [channel.frame_error(0.0, 100, rng) for _ in range(3)] == [
            False, True, False,
        ]
        assert rng.bit_generator.state == before
        assert channel.remaining == 0

    def test_frame_mode_exhaustion_policies(self):
        exhausted = TraceReplayChannel(records=[True], mode="frame")
        exhausted.frame_error(0.0, 8, _rng())
        with pytest.raises(ValueError, match="exhausted"):
            exhausted.frame_error(1.0, 8, _rng())

        perfect = TraceReplayChannel(
            records=[True], mode="frame", on_exhausted="perfect"
        )
        perfect.frame_error(0.0, 8, _rng())
        assert perfect.frame_error(1.0, 8, _rng()) is False

        looped = TraceReplayChannel(
            records=[True, False], mode="frame", on_exhausted="loop"
        )
        decisions = [looped.frame_error(float(i), 8, _rng()) for i in range(4)]
        assert decisions == [True, False, True, False]

    def test_strict_bits_catches_geometry_mismatch(self):
        channel = TraceReplayChannel(
            records=[{"t": 0.0, "bits": 100, "error": False}],
            mode="frame", strict_bits=True,
        )
        with pytest.raises(ValueError, match="100-bit"):
            channel.frame_error(0.0, 200, _rng())

    def test_ber_mode_piecewise_constant(self):
        channel = TraceReplayChannel(
            records=[(0.0, 0.0), (1.0, 1.0)], mode="ber"
        )
        assert channel.instantaneous_ber(0.5) == 0.0
        assert channel.instantaneous_ber(1.5) == 1.0
        rng = _rng(2)
        before = rng.bit_generator.state
        # Zero-BER segment: no error and no draw consumed.
        assert channel.frame_error(0.5, 1000, rng) is False
        assert rng.bit_generator.state == before
        # BER 1.0 segment: certain error.
        assert channel.frame_error(1.5, 1000, rng) is True

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            TraceReplayChannel()
        with pytest.raises(ValueError, match="on_exhausted"):
            TraceReplayChannel(records=[True], mode="frame", on_exhausted="nope")


class TestTraceFiles:
    def test_round_trip_preserves_header_and_records(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        header = write_trace(
            path,
            [{"t": 0.0, "bits": 64, "error": True}, {"error": False}],
            mode="frame", model="bernoulli", seed=3, digest="abc",
        )
        loaded_header, records = load_trace(path)
        assert loaded_header == header
        assert loaded_header["mode"] == "frame"
        assert loaded_header["records"] == 2
        assert records[0] == {"t": 0.0, "bits": 64, "error": True}
        channel = TraceReplayChannel(path=path)
        assert channel.length == 2
        assert channel.header["digest"] == "abc"

    def test_unsupported_schema_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace-header", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            load_trace(str(path))

    def test_headerless_trace_is_valid(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        path.write_text('{"t": 0.0, "ber": 1e-4}\n{"t": 1.0, "ber": 0.0}\n')
        channel = TraceReplayChannel(path=str(path), mode="ber")
        assert channel.instantaneous_ber(0.5) == 1e-4


class TestSynthesisReplayDigest:
    """The acceptance loop: a synthesized trace replays bit-identically."""

    def test_replay_reproduces_digest(self, tmp_path):
        scenario = preset("noisy")
        spec = ("gilbert-elliott", GE_PARAMS)
        recorded = synthesize_trace(scenario, spec, seed=3, n_frames=150)
        assert recorded.delivered == 150
        assert any(record["error"] for record in recorded.records)

        replayed = replay_trace(scenario, recorded.records, seed=3, n_frames=150)
        assert replayed.digest == recorded.digest

        path = str(tmp_path / "ge.jsonl")
        write_trace(path, recorded.records, mode="frame", digest=recorded.digest)
        from_file = replay_trace(scenario, path, seed=3, n_frames=150)
        assert from_file.digest == recorded.digest

    def test_recording_is_transparent(self):
        # A recorded run and an unrecorded run must be bit-identical.
        scenario = preset("noisy")
        bare = synthesize_trace(scenario, "bernoulli", seed=5, n_frames=40)
        inner = BernoulliChannel(scenario.iframe_ber)
        wrapped = RecordingChannel(inner)
        rng_a, rng_b = _rng(3), _rng(3)
        reference = BernoulliChannel(scenario.iframe_ber)
        for i in range(200):
            assert wrapped.frame_error(i * 1e-3, 8272, rng_a) == \
                reference.frame_error(i * 1e-3, 8272, rng_b)
        assert len(wrapped.records) == 200
        assert bare.digest == delivered_digest_of_rerun(scenario, seed=5)

    def test_trace_synth_cli_verify(self, tmp_path):
        out = str(tmp_path / "cli.jsonl")
        code = main([
            "trace-synth", "--preset", "noisy", "--model", "bernoulli",
            "--frames", "30", "--seed", "4", "--output", out, "--verify",
        ])
        assert code == 0
        header, records = load_trace(out)
        assert header["records"] == len(records)
        assert "digest" in header


def delivered_digest_of_rerun(scenario, seed: int) -> str:
    """Digest of the same batch run without a recorder in the path."""
    result = synthesize_trace(scenario, "bernoulli", seed=seed, n_frames=40)
    return result.digest


# ---------------------------------------------------------------------------
# Orbit-coupled BER
# ---------------------------------------------------------------------------


class TestOrbitCoupledChannel:
    def test_ber_tracks_distance(self):
        channel = OrbitCoupledChannel(ber=1e-6, mispointing_gain=0.0)
        reference = channel.instantaneous_ber(0.0)
        assert reference == pytest.approx(1e-6)
        series = [channel.instantaneous_ber(t) for t in range(0, 3600, 60)]
        assert max(series) > min(series)  # geometry actually moves the BER

    def test_max_ber_clamp(self):
        channel = OrbitCoupledChannel(ber=1e-3, max_ber=1e-3)
        assert all(
            channel.instantaneous_ber(float(t)) <= 1e-3
            for t in range(0, 7200, 600)
        )

    def test_injected_geometry_wins(self):
        geometry = IsolatedLinkGeometry(
            Satellite("a", altitude_km=800.0),
            Satellite("b", altitude_km=800.0, phase_deg=15.0),
        )
        channel = OrbitCoupledChannel(1e-6, geometry)
        assert channel.geometry is geometry
        assert channel.ref_distance_km == pytest.approx(geometry.distance_km(0.0))

    def test_coincident_fallback_rejected(self):
        with pytest.raises(ValueError, match="coincident"):
            OrbitCoupledChannel(
                raan_separation_deg=0.0, phase_separation_deg=0.0
            )

    def test_topology_injects_link_geometry(self):
        # A link between two satellite nodes hands its own geometry to
        # the orbit-coupled model via the registry context.
        from repro.simulator.engine import Simulator
        from repro.topology.spec import LinkSpec
        from repro.topology.spec import build_link as build_topology_link

        sat_a = Satellite("sat-a", altitude_km=900.0)
        sat_b = Satellite("sat-b", altitude_km=900.0, raan_deg=25.0)
        geometry = IsolatedLinkGeometry(sat_a, sat_b)
        scenario = preset("nominal").with_(iframe_error_model="orbit-coupled")
        spec = LinkSpec(scenario=scenario, a="sat-a", b="sat-b")
        link = build_topology_link(
            spec, Simulator(), geometry=geometry,
        )
        model = link.forward.iframe_errors
        assert isinstance(model, OrbitCoupledChannel)
        assert model.geometry is geometry
        # The reverse direction got its own fresh instance, not a share.
        reverse_model = link.reverse.iframe_errors
        assert isinstance(reverse_model, OrbitCoupledChannel)
        assert reverse_model is not model

    def test_constellation_builder_wires_satellite_geometry(self):
        from repro.topology import Topology, build_constellation
        from repro.topology.spec import LinkSpec

        sat_a = Satellite("sat-a", altitude_km=900.0)
        sat_b = Satellite("sat-b", altitude_km=900.0, raan_deg=25.0)
        scenario = preset("nominal").with_(iframe_error_model="orbit-coupled")
        topology = Topology(
            name="pair",
            nodes=(sat_a, sat_b),
            links=(LinkSpec(scenario=scenario, a="sat-a", b="sat-b"),),
        )
        constellation = build_constellation(topology, master_seed=3)
        (built,) = constellation.links.values()
        model = built.link.forward.iframe_errors
        assert isinstance(model, OrbitCoupledChannel)
        assert model.geometry.a is sat_a
        assert model.geometry.b is sat_b


# ---------------------------------------------------------------------------
# Asymmetric feedback channels
# ---------------------------------------------------------------------------


class TestAsymmetricFeedback:
    def test_reverse_mirrors_forward_by_default(self):
        models = resolve_link_error_models(
            iframe="bernoulli", iframe_ber=1e-5, cframe_ber=1e-7,
        )
        iframe, cframe, reverse_iframe, reverse_cframe = models
        assert isinstance(iframe, BernoulliChannel)
        assert isinstance(reverse_iframe, BernoulliChannel)
        assert reverse_iframe is not iframe  # fresh instance per direction
        assert reverse_iframe.ber == iframe.ber
        assert reverse_cframe.ber == cframe.ber

    def test_reverse_ber_override(self):
        models = resolve_link_error_models(
            cframe_ber=1e-8, reverse_cframe_ber=1e-3,
        )
        assert models[1].ber == 1e-8
        assert models[3].ber == 1e-3

    def test_instance_forward_keeps_legacy_sharing(self):
        shared = BernoulliChannel(1e-5)
        models = resolve_link_error_models(iframe=shared)
        assert models[0] is shared
        assert models[2] is None  # FullDuplexLink falls back to sharing

    def test_scenario_reverse_fields_reach_the_link(self):
        from repro.simulator.engine import Simulator

        scenario = preset("nominal").with_(
            reverse_cframe_ber=0.25, reverse_iframe_ber=0.125,
        )
        link = scenario.build_link(Simulator(), seed=1)
        assert link.forward.cframe_errors.ber == scenario.cframe_ber
        assert link.reverse.cframe_errors.ber == 0.25
        assert link.reverse.iframe_errors.ber == 0.125

    def test_impairments_directions(self):
        from repro.transport.impair import Impairments

        scenario = preset("nominal").with_(
            reverse_cframe_ber=1e-3, reverse_cframe_error_model="bernoulli",
        )
        forward = Impairments.from_scenario(scenario)
        reverse = Impairments.from_scenario(scenario, direction="reverse")
        assert forward.cframe_ber == scenario.cframe_ber
        assert forward.cframe_errors == scenario.cframe_error_model
        assert reverse.cframe_ber == 1e-3
        assert reverse.cframe_errors == "bernoulli"
        # Unset reverse fields fall back to the forward values.
        assert reverse.iframe_ber == scenario.iframe_ber
        with pytest.raises(ValueError, match="direction"):
            Impairments.from_scenario(scenario, direction="sideways")

    def test_e25_rows_cover_the_sweep(self):
        from repro.experiments.registry import e25_feedback_asymmetry

        result = e25_feedback_asymmetry(
            duration=0.05, feedback_bers=(0.0, 5e-3), depths=(2,),
        )
        assert [row["feedback_ber"] for row in result.rows] == [0.0, 5e-3]
        clean, lossy = result.rows
        assert clean["p_nak_streak_lost"] == 0.0
        assert 0.0 < lossy["p_nak_streak_lost"] < 1.0
        assert clean["efficiency"] > 0.0


# ---------------------------------------------------------------------------
# Chaos episodes draw the new models
# ---------------------------------------------------------------------------


class TestChaosEpisodeModels:
    def test_both_new_models_are_drawable(self):
        from repro.chaos.episodes import generate_episode

        kinds = set()
        for index in range(64):
            spec = generate_episode(20260806, index)
            model = spec.iframe_errors
            kinds.add(model[0] if isinstance(model, tuple) else model)
        assert "trace-replay" in kinds
        assert "orbit-coupled" in kinds

    def test_episode_specs_resolve_to_live_models(self):
        from repro.chaos.episodes import generate_episode

        for index in range(16):
            spec = generate_episode(20260806, index)
            if spec.iframe_errors is None:
                continue
            model = resolve_error_model(
                spec.iframe_errors, ber=1e-6, bit_rate=3e8,
            )
            assert hasattr(model, "frame_error")


# ---------------------------------------------------------------------------
# Registry regression suite (the satellite bugfixes)
# ---------------------------------------------------------------------------


class TestBernoulliBufferedDraws:
    def test_two_generators_match_scalar_reference(self):
        # One instance alternating two RNG streams must produce, per
        # stream, the same decisions as dedicated instances: the draw
        # buffer is kept per generator, not per instance.
        shared = BernoulliChannel(0.3)
        rng_a, rng_b = _rng(10), _rng(20)
        solo_a, solo_b = BernoulliChannel(0.3), BernoulliChannel(0.3)
        ref_a, ref_b = _rng(10), _rng(20)
        for i in range(1300):  # crosses the 512-draw buffer boundary
            assert shared.frame_error(i * 1e-3, 100, rng_a) == \
                solo_a.frame_error(i * 1e-3, 100, ref_a)
            assert shared.frame_error(i * 1e-3, 100, rng_b) == \
                solo_b.frame_error(i * 1e-3, 100, ref_b)

    def test_matches_unbuffered_scalar_draws(self):
        channel = BernoulliChannel(0.25)
        rng = _rng(7)
        reference = _rng(7)
        for i in range(600):
            expected = reference.random() < 0.25
            assert channel.frame_error(i * 1e-3, 1, rng) == expected


class TestGilbertElliottTimeGuard:
    def test_backwards_time_raises(self):
        channel = GilbertElliottChannel(bit_rate=3e8, **GE_PARAMS)
        channel.frame_error(1.0, 1000, _rng())
        with pytest.raises(ValueError, match="time went backwards"):
            channel.frame_error(0.5, 1000, _rng())

    def test_equal_time_is_fine(self):
        channel = GilbertElliottChannel(bit_rate=3e8, **GE_PARAMS)
        rng = _rng(1)
        channel.frame_error(1.0, 1000, rng)
        channel.frame_error(1.0, 1000, rng)  # piggyback at the same instant


class TestRegistryEdgeCases:
    def test_duplicate_registration_replaces(self):
        try:
            register_error_model("channels-test-dup", lambda: PerfectChannel())
            replacement = lambda: BernoulliChannel(0.5)  # noqa: E731
            register_error_model("channels-test-dup", replacement)
            assert error_model_factory("channels-test-dup") is replacement
        finally:
            from repro.simulator.errormodel import _ERROR_MODELS

            _ERROR_MODELS.pop("channels-test-dup", None)

    def test_case_insensitive_lookup(self):
        assert error_model_factory("BERNOULLI") is BernoulliChannel
        model = make_error_model("Bernoulli", ber=1e-4)
        assert isinstance(model, BernoulliChannel)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="bernoulli"):
            error_model_factory("no-such-model")

    def test_mapping_without_model_key(self):
        with pytest.raises(ValueError, match="'model' key"):
            resolve_error_model({"ber": 1e-4})

    def test_instance_passes_through(self):
        instance = PerfectChannel()
        assert resolve_error_model(instance) is instance
        with pytest.raises(TypeError, match="not an error-model spec"):
            resolve_error_model(object())

    def test_none_context_defaulting(self):
        model = make_error_model("bernoulli", None, ber=1e-4)
        assert model.ber == 1e-4
        # None-valued context entries are never injected.
        model = make_error_model("bernoulli", {"ber": None, "bit_rate": None},
                                 ber=1e-5)
        assert model.ber == 1e-5

    def test_new_models_are_registered(self):
        names = available_error_models()
        assert "trace-replay" in names
        assert "orbit-coupled" in names


class TestFactorySignatureCache:
    def test_var_keyword_factory_receives_context(self):
        received = {}

        def factory(**kwargs):
            received.update(kwargs)
            return PerfectChannel()

        try:
            register_error_model("channels-test-kwargs", factory)
            make_error_model(
                "channels-test-kwargs",
                {"ber": 1e-6, "bit_rate": 3e8, "geometry": None},
            )
            assert received == {"ber": 1e-6, "bit_rate": 3e8}
        finally:
            from repro.simulator.errormodel import _ERROR_MODELS

            _ERROR_MODELS.pop("channels-test-kwargs", None)

    def test_signature_inspected_once_per_factory(self):
        from repro.simulator.errormodel import _FACTORY_ACCEPTS, _factory_accepts

        first = _factory_accepts(BernoulliChannel)
        second = _factory_accepts(BernoulliChannel)
        assert first is second
        assert BernoulliChannel in _FACTORY_ACCEPTS

    def test_explicit_kwargs_beat_context(self):
        model = make_error_model("bernoulli", {"ber": 1e-3}, ber=1e-6)
        assert model.ber == 1e-6


class TestTupleSpecValidation:
    def test_mapping_second_element(self):
        model = resolve_error_model(("bernoulli", {"ber": 1e-4}))
        assert model.ber == 1e-4

    def test_pair_tuple_second_element(self):
        # The chaos plane's frozen episode specs store params as nested
        # key/value pair tuples; dict() digests them.
        model = resolve_error_model(("bernoulli", (("ber", 1e-4),)))
        assert model.ber == 1e-4

    def test_scalar_second_element_rejected_helpfully(self):
        with pytest.raises(ValueError, match="mapping"):
            resolve_error_model(("bernoulli", 0.5))

    def test_malformed_pairs_rejected_helpfully(self):
        with pytest.raises(ValueError, match="mapping"):
            resolve_error_model(("bernoulli", [1, 2, 3]))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="\\(name, kwargs\\)"):
            resolve_error_model(("bernoulli",))

"""Tests for the NBDT baseline (absolute numbering, selective reports)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nbdt import NbdtConfig, NbdtReport, nbdt_pair
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    PerfectChannel,
    Simulator,
    StreamRegistry,
)

RATE = 100e6
DELAY = 0.010


def build(sim, mode="continuous", iframe_ber=0.0, cframe_ber=0.0, seed=1, **cfg):
    link = FullDuplexLink(
        sim, bit_rate=RATE, propagation_delay=DELAY, name="n",
        iframe_errors=BernoulliChannel(iframe_ber) if iframe_ber else PerfectChannel(),
        cframe_errors=BernoulliChannel(cframe_ber) if cframe_ber else PerfectChannel(),
        streams=StreamRegistry(seed=seed),
    )
    config = NbdtConfig(mode=mode, report_every=64, timeout=0.06, **cfg)
    delivered = []
    a, b = nbdt_pair(sim, link, config, deliver_b=delivered.append)
    a.start()
    return link, a, b, delivered


def transfer(endpoint, n):
    for i in range(n):
        assert endpoint.accept(("pkt", i))


class TestConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            NbdtConfig(mode="burst")
        with pytest.raises(ValueError):
            NbdtConfig(report_every=0)
        with pytest.raises(ValueError):
            NbdtConfig(timeout=0)

    def test_report_bits(self):
        config = NbdtConfig(report_base_bits=96, report_per_missing_bits=32)
        assert config.report_bits(0) == 96
        assert config.report_bits(3) == 192

    def test_report_frame_validation(self):
        with pytest.raises(ValueError):
            NbdtReport(cumulative=-1, highest_seen=0)
        with pytest.raises(ValueError):
            NbdtReport(cumulative=0, highest_seen=2, missing=(1, 1))


class TestContinuousMode:
    def test_clean_channel_exactly_once(self):
        sim = Simulator()
        _, a, b, delivered = build(sim)
        transfer(a, 1000)
        sim.run(until=10.0)
        assert sorted(p[1] for p in delivered) == list(range(1000))
        assert a.sender.retransmissions == 0
        assert a.sender.unresolved_count == 0

    def test_absolute_ids_never_reused(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, iframe_ber=2e-5, seed=3)
        transfer(a, 2000)
        sim.run(until=60.0)
        assert a.sender._next_fid == 2000  # one id per frame, forever
        assert sorted(set(p[1] for p in delivered)) == list(range(2000))

    def test_no_window_stall(self):
        """Unlike HDLC, NBDT streams the whole batch without pausing."""
        sim = Simulator()
        _, a, b, delivered = build(sim)
        transfer(a, 500)
        t_f = NbdtConfig().iframe_bits / RATE
        # All 500 frames serialize back-to-back in ~500 * t_f.
        sim.run(until=510 * t_f)
        assert a.sender.iframes_sent == 500

    def test_zero_loss_with_control_errors(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, iframe_ber=1e-5, cframe_ber=1e-4, seed=4)
        transfer(a, 2000)
        sim.run(until=60.0)
        assert sorted(set(p[1] for p in delivered)) == list(range(2000))

    def test_trailing_loss_recovered(self):
        """Tail frames invisible to the gap list must still arrive."""
        sim = Simulator()
        link, a, b, delivered = build(sim, seed=5)
        transfer(a, 100)
        # Cut the forward channel briefly so the tail of the batch dies.
        sim.schedule_at(0.004, link.forward.down)
        sim.schedule_at(0.030, link.forward.up)
        sim.run(until=30.0)
        assert sorted(set(p[1] for p in delivered)) == list(range(100))


class TestMultiphaseMode:
    def test_clean_channel(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, mode="multiphase")
        transfer(a, 500)
        sim.run(until=10.0)
        assert sorted(p[1] for p in delivered) == list(range(500))

    def test_phases_alternate(self):
        """Retransmissions happen in their own phase, after the report."""
        sim = Simulator()
        _, a, b, delivered = build(sim, mode="multiphase", iframe_ber=2e-5, seed=6)
        transfer(a, 1000)
        sim.run(until=60.0)
        assert a.sender.retransmissions > 0
        assert sorted(set(p[1] for p in delivered)) == list(range(1000))
        # One report per phase (plus timeout recoveries), far fewer than
        # continuous mode's per-64-frames cadence.
        assert b.receiver.reports_sent < 1000 // 64 + a.sender.timeouts + 10

    def test_multiphase_slower_than_continuous_under_load(self):
        """The paper introduced continuous mode precisely because
        alternation leaves the line idle between phases."""
        durations = {}
        for mode in ("multiphase", "continuous"):
            sim = Simulator()
            _, a, b, delivered = build(sim, mode=mode, iframe_ber=1e-5, seed=7)
            transfer(a, 3000)
            done = {}

            def check(d=delivered, done=done, sim=sim):
                if len(d) >= 3000 and "t" not in done:
                    done["t"] = sim.now

            # poll completion coarsely
            def poll():
                check()
                if "t" not in done:
                    sim.schedule(0.01, poll)
            poll()
            sim.run(until=120.0)
            durations[mode] = done.get("t", float("inf"))
        assert durations["continuous"] < durations["multiphase"]


class TestPaperCritiques:
    def test_no_failure_detection(self):
        """NBDT never declares failure: a dead receiver means polling
        forever — the paper's reliability critique."""
        sim = Simulator()
        link, a, b, delivered = build(sim, seed=8)
        transfer(a, 100)
        sim.schedule_at(0.010, link.down)  # permanent outage
        sim.run(until=5.0)
        assert a.sender.timeouts > 10          # still polling...
        assert a.sender.unresolved_count > 0   # ...holding everything...
        assert not hasattr(a.sender, "failed") or not getattr(a.sender, "failed")

    def test_memory_held_until_positive_ack(self):
        """Frames stay in sender memory until a report covers them."""
        sim = Simulator()
        link, a, b, delivered = build(sim, seed=9)
        transfer(a, 200)
        # Cut the reverse channel: data flows, reports do not.
        link.reverse.down()
        sim.run(until=1.0)
        assert len(delivered) == 200          # receiver got everything
        assert a.sender.unresolved_count == 200  # sender released nothing


class TestSeededProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        mode=st.sampled_from(["continuous", "multiphase"]),
        iframe_ber=st.sampled_from([0.0, 1e-5, 3e-5]),
    )
    def test_exactly_once_any_seed(self, seed, mode, iframe_ber):
        sim = Simulator()
        _, a, b, delivered = build(sim, mode=mode, iframe_ber=iframe_ber,
                                   cframe_ber=1e-6, seed=seed)
        n = 300
        transfer(a, n)
        sim.run(until=60.0)
        ids = [p[1] for p in delivered]
        assert sorted(set(ids)) == list(range(n))
        assert len(ids) == len(set(ids))  # receiver dedups by absolute id

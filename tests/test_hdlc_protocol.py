"""Integration tests for the SR-HDLC and GBN-HDLC baselines."""

from __future__ import annotations

import pytest

from repro.hdlc import HdlcConfig, hdlc_pair
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    PerfectChannel,
    Simulator,
    StreamRegistry,
    Tracer,
)

RATE = 100e6
DELAY = 0.010
RTT = 2 * DELAY


def build(sim, iframe_ber=0.0, cframe_ber=0.0, seed=1, config=None, tracer=None):
    link = FullDuplexLink(
        sim,
        bit_rate=RATE,
        propagation_delay=DELAY,
        name="h",
        iframe_errors=BernoulliChannel(iframe_ber) if iframe_ber else PerfectChannel(),
        cframe_errors=BernoulliChannel(cframe_ber) if cframe_ber else PerfectChannel(),
        streams=StreamRegistry(seed=seed),
        tracer=tracer,
    )
    config = config or HdlcConfig(window_size=32, sequence_bits=7, timeout=0.06)
    delivered = []
    a, b = hdlc_pair(sim, link, config, tracer=tracer, deliver_b=delivered.append)
    a.start()
    return link, a, b, delivered


def transfer(endpoint, n):
    for i in range(n):
        assert endpoint.accept(("pkt", i))


class TestSelectiveRepeat:
    def test_clean_channel_in_order_exactly_once(self):
        sim = Simulator()
        _, a, b, delivered = build(sim)
        transfer(a, 1000)
        sim.run(until=10.0)
        assert [p[1] for p in delivered] == list(range(1000))
        assert a.sender.retransmissions == 0

    def test_window_stalls_until_rr(self):
        """With W frames outstanding and no RR yet, the sender must wait."""
        sim = Simulator()
        config = HdlcConfig(window_size=8, sequence_bits=7, timeout=0.06)
        _, a, b, delivered = build(sim, config=config)
        transfer(a, 100)
        # All 8 window frames serialize in ~0.66 ms; the RR can't return
        # before RTT = 20 ms. In between the sender must be stalled at 8.
        sim.run(until=0.010)
        assert a.sender.iframes_sent == 8
        sim.run(until=10.0)
        assert len(delivered) == 100

    def test_zero_loss_with_errors(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, iframe_ber=5e-6, cframe_ber=1e-7, seed=2)
        transfer(a, 2000)
        sim.run(until=60.0)
        assert sorted(p[1] for p in delivered) == list(range(2000))

    def test_delivery_strictly_in_order(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, iframe_ber=1e-5, seed=3)
        transfer(a, 1500)
        sim.run(until=60.0)
        ids = [p[1] for p in delivered]
        assert ids == sorted(ids) == list(range(1500))

    def test_srej_recovery_no_timeout_needed(self):
        """Errors inside a window recover via SREJ, not timeouts."""
        sim = Simulator()
        tracer = Tracer()
        _, a, b, delivered = build(sim, iframe_ber=5e-6, seed=4, tracer=tracer)
        transfer(a, 1000)
        sim.run(until=30.0)
        assert b.receiver.srej_sent > 0
        assert len(delivered) == 1000

    def test_lost_response_recovered_by_timeout(self):
        """Kill all control frames for a while: the poll timer recovers."""
        sim = Simulator()
        link, a, b, delivered = build(sim, seed=5)
        transfer(a, 32)
        # Cut only the reverse channel so the window's RR vanishes.
        sim.schedule_at(0.005, link.reverse.down)
        sim.schedule_at(0.100, link.reverse.up)
        sim.run(until=10.0)
        assert a.sender.timeouts >= 1
        assert sorted(p[1] for p in delivered) == list(range(32))

    def test_receiver_holds_out_of_order_frames(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, iframe_ber=2e-5, seed=6)
        transfer(a, 1000)
        sim.run(until=60.0)
        assert b.receiver.window.peak_held > 0  # resequencing buffer used
        assert len(delivered) == 1000

    def test_duplicates_discarded_by_receiver(self):
        sim = Simulator()
        # Heavy control loss forces retransmissions of delivered frames.
        _, a, b, delivered = build(sim, iframe_ber=1e-6, cframe_ber=5e-4, seed=7)
        transfer(a, 500)
        sim.run(until=60.0)
        ids = [p[1] for p in delivered]
        assert ids == list(range(500))  # exactly once upward
        assert b.receiver.duplicates >= 0

    def test_mean_holding_time_at_least_rtt(self):
        sim = Simulator()
        _, a, b, delivered = build(sim)
        transfer(a, 500)
        sim.run(until=10.0)
        assert a.sender.mean_holding_time >= RTT * 0.9


class TestGoBackN:
    def make_config(self):
        return HdlcConfig(
            window_size=32, sequence_bits=7, timeout=0.06, selective=False
        )

    def test_clean_channel(self):
        sim = Simulator()
        _, a, b, delivered = build(sim, config=self.make_config())
        transfer(a, 500)
        sim.run(until=10.0)
        assert [p[1] for p in delivered] == list(range(500))

    def test_zero_loss_with_errors(self):
        sim = Simulator()
        _, a, b, delivered = build(
            sim, iframe_ber=5e-6, seed=8, config=self.make_config()
        )
        transfer(a, 1000)
        sim.run(until=60.0)
        assert sorted(p[1] for p in delivered) == list(range(1000))

    def test_gbn_retransmits_more_than_sr(self):
        """Section 2.3: GBN discards everything behind an error."""
        results = {}
        for selective in (True, False):
            sim = Simulator()
            config = HdlcConfig(
                window_size=32, sequence_bits=7, timeout=0.06, selective=selective
            )
            _, a, b, delivered = build(sim, iframe_ber=1e-5, seed=9, config=config)
            transfer(a, 1000)
            sim.run(until=120.0)
            assert sorted(p[1] for p in delivered) == list(range(1000))
            results[selective] = a.sender.retransmissions
        assert results[False] > 2 * results[True]

    def test_receiver_discards_out_of_order(self):
        sim = Simulator()
        _, a, b, delivered = build(
            sim, iframe_ber=2e-5, seed=10, config=self.make_config()
        )
        transfer(a, 500)
        sim.run(until=60.0)
        assert b.receiver.discards > 0
        assert len(delivered) == 500


class TestBufferGrowth:
    def test_sr_hdlc_sending_buffer_diverges_under_load(self):
        """The paper's B_HDLC = ∞ result, observed directly."""
        from repro.workloads.generators import ConstantRateSource

        sim = Simulator()
        _, a, b, delivered = build(sim)
        t_f = HdlcConfig().iframe_bits / RATE
        source = ConstantRateSource(sim, a, rate=0.8 / t_f)
        source.start()
        occupancies = []
        for checkpoint_time in (0.5, 1.0, 1.5, 2.0):
            sim.run(until=checkpoint_time)
            occupancies.append(a.sender.occupancy)
        source.stop()
        # Strictly increasing backlog: no transparent buffer size.
        assert occupancies == sorted(occupancies)
        assert occupancies[-1] > occupancies[0] * 2

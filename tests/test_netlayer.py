"""Tests for the network layer: datagrams, resequencer, forwarding, service."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netlayer.datagram import DatagramService, DeliveryLog
from repro.netlayer.forwarding import ForwardingNetworkLayer, shortest_path_routes
from repro.netlayer.packet import Datagram
from repro.netlayer.resequencer import Resequencer
from repro.simulator.engine import Simulator
from repro.simulator.node import Node


def make_datagram(sequence: int, source="s", destination="d") -> Datagram:
    return Datagram(
        source=source, destination=destination,
        sequence=sequence, created_at=0.0,
    )


class TestDatagram:
    def test_key_and_flow(self):
        dg = make_datagram(5)
        assert dg.key == ("s", 5)
        assert dg.flow_id == ("s", "d")

    def test_validation(self):
        with pytest.raises(ValueError):
            make_datagram(-1)
        with pytest.raises(ValueError):
            Datagram(source="s", destination="d", sequence=0, created_at=0.0, size_bits=0)


class TestResequencer:
    def test_in_order_passthrough(self):
        out = []
        reseq = Resequencer(deliver=out.append)
        for i in range(5):
            reseq.push(make_datagram(i))
        assert [d.sequence for d in out] == [0, 1, 2, 3, 4]

    def test_reorders(self):
        out = []
        reseq = Resequencer(deliver=out.append)
        for seq in (2, 0, 1):
            reseq.push(make_datagram(seq))
        assert [d.sequence for d in out] == [0, 1, 2]
        assert reseq.out_of_order_arrivals >= 1

    def test_duplicates_dropped(self):
        out = []
        reseq = Resequencer(deliver=out.append)
        reseq.push(make_datagram(0))
        reseq.push(make_datagram(0))       # already delivered
        reseq.push(make_datagram(2))
        reseq.push(make_datagram(2))       # already held
        reseq.push(make_datagram(1))
        assert [d.sequence for d in out] == [0, 1, 2]
        assert reseq.duplicates_dropped == 2

    def test_per_source_independence(self):
        out = []
        reseq = Resequencer(deliver=out.append)
        reseq.push(make_datagram(1, source="a"))
        reseq.push(make_datagram(0, source="b"))
        assert [d.source for d in out] == ["b"]
        reseq.push(make_datagram(0, source="a"))
        assert [(d.source, d.sequence) for d in out] == [("b", 0), ("a", 0), ("a", 1)]

    def test_held_count_and_pending_sources(self):
        reseq = Resequencer()
        reseq.push(make_datagram(3))
        reseq.push(make_datagram(5))
        assert reseq.held_count() == 2
        assert reseq.held_count("s") == 2
        assert reseq.pending_sources() == ["s"]

    @given(
        st.permutations(list(range(12))),
        st.lists(st.integers(min_value=0, max_value=11), max_size=8),
    )
    def test_any_permutation_with_duplicates_exactly_once_in_order(
        self, order, duplicate_positions
    ):
        """The destination contract: any arrival order + any duplicates
        still produce exactly-once, in-order delivery."""
        out = []
        reseq = Resequencer(deliver=out.append)
        stream = list(order)
        for position in duplicate_positions:
            stream.insert(position % (len(stream) + 1), order[position % len(order)])
        for seq in stream:
            reseq.push(make_datagram(seq))
        assert [d.sequence for d in out] == list(range(12))


class TestRouting:
    def topology(self):
        #  a - b - c
        #       \  |
        #        \ d
        return {
            "a": {"b": "ab"},
            "b": {"a": "ab", "c": "bc", "d": "bd"},
            "c": {"b": "bc", "d": "cd"},
            "d": {"b": "bd", "c": "cd"},
        }

    def test_first_hop_routes(self):
        routes = shortest_path_routes(self.topology(), "a")
        assert routes == {"b": "ab", "c": "ab", "d": "ab"}

    def test_routes_from_hub(self):
        routes = shortest_path_routes(self.topology(), "b")
        assert routes["a"] == "ab"
        assert routes["c"] == "bc"
        assert routes["d"] == "bd"

    def test_unknown_origin(self):
        with pytest.raises(KeyError):
            shortest_path_routes(self.topology(), "zz")

    def test_agrees_with_networkx(self):
        """Cross-check BFS first-hops against networkx shortest paths."""
        import networkx as nx

        topology = self.topology()
        graph = nx.Graph()
        for node, neighbors in topology.items():
            for neighbor in neighbors:
                graph.add_edge(node, neighbor)
        for origin in topology:
            routes = shortest_path_routes(topology, origin)
            for destination, link in routes.items():
                path = nx.shortest_path(graph, origin, destination)
                assert topology[origin][path[1]] == link


class TestForwardingLayer:
    def test_local_delivery_goes_through_resequencer(self):
        sim = Simulator()
        out = []
        layer = ForwardingNetworkLayer(sim, address="d", deliver=out.append)
        layer.on_packet(make_datagram(1), from_link="l")
        layer.on_packet(make_datagram(0), from_link="l")
        assert [d.sequence for d in out] == [0, 1]

    def test_transit_forwarded_via_route(self):
        sim = Simulator()
        layer = ForwardingNetworkLayer(sim, address="m", routes={"d": "out"})
        node = Node(sim, "m", network_layer=layer)
        layer.bind(node)
        sent = []

        class FakeEndpoint:
            def accept(self, packet):
                sent.append(packet)
                return True

        node.attach_endpoint("out", FakeEndpoint())
        layer.on_packet(make_datagram(0), from_link="in")
        assert len(sent) == 1
        assert layer.forwarded == 1

    def test_refused_packets_retry(self):
        sim = Simulator()
        layer = ForwardingNetworkLayer(sim, address="m", routes={"d": "out"}, retry_interval=0.01)
        node = Node(sim, "m", network_layer=layer)
        layer.bind(node)
        accepted = []

        class FlakyEndpoint:
            def __init__(self):
                self.calls = 0

            def accept(self, packet):
                self.calls += 1
                if self.calls <= 2:
                    return False
                accepted.append(packet)
                return True

        node.attach_endpoint("out", FlakyEndpoint())
        layer.on_packet(make_datagram(0), from_link="in")
        assert layer.retry_backlog == 1
        sim.run(until=1.0)
        assert accepted and layer.retry_backlog == 0

    def test_missing_route_raises(self):
        sim = Simulator()
        layer = ForwardingNetworkLayer(sim, address="m", routes={})
        node = Node(sim, "m", network_layer=layer)
        layer.bind(node)
        with pytest.raises(KeyError):
            layer.on_packet(make_datagram(0), from_link="in")

    def test_unbound_layer_raises(self):
        sim = Simulator()
        layer = ForwardingNetworkLayer(sim, address="m", routes={"d": "out"})
        with pytest.raises(RuntimeError):
            layer.send(make_datagram(0, source="m"))


class TestDatagramService:
    def test_sequences_assigned_per_destination(self):
        sim = Simulator()
        layer = ForwardingNetworkLayer(sim, address="src")
        # Loopback: destination == own address delivers locally.
        log = DeliveryLog(sim)
        layer.resequencer.deliver = log
        service = DatagramService(sim, layer)
        first = service.send("src", data="x")
        second = service.send("src", data="y")
        assert (first.sequence, second.sequence) == (0, 1)
        assert len(log) == 2

    def test_delivery_log_metrics(self):
        sim = Simulator()
        log = DeliveryLog(sim)
        dg = Datagram(source="s", destination="d", sequence=0, created_at=0.0)
        sim.schedule(1.5, log, dg)
        sim.run()
        assert log.mean_delay() == pytest.approx(1.5)
        assert log.in_order("s")
        assert log.exactly_once("s", 1)
        assert not log.exactly_once("s", 2)

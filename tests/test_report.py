"""Tests for the full-report generator and its CLI command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.report import HEADER, generate_report


class TestGenerateReport:
    def test_subset_report(self):
        text = generate_report(experiment_ids=["E1", "E9"])
        assert HEADER.splitlines()[0] in text
        assert "[E1]" in text and "[E9]" in text
        assert "[E6]" not in text

    def test_timing_section(self):
        text = generate_report(experiment_ids=["E1"])
        assert "experiment runtimes:" in text
        assert "E1" in text.split("experiment runtimes:")[1]

    def test_timing_can_be_suppressed(self):
        text = generate_report(experiment_ids=["E1"], include_timing=False)
        assert "experiment runtimes:" not in text

    def test_unknown_ids_rejected(self):
        with pytest.raises(KeyError):
            generate_report(experiment_ids=["E1", "E99"])

    def test_order_preserved(self):
        text = generate_report(experiment_ids=["E9", "E1"], include_timing=False)
        assert text.index("[E9]") < text.index("[E1]")


class TestReportCli:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--only", "E1"]) == 0
        out = capsys.readouterr().out
        assert "[E1]" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["report", "--only", "E1", "--output", str(target)]) == 0
        assert "[E1]" in target.read_text()
        assert "written to" in capsys.readouterr().out

"""Protocol-conformance tests: fine-grained Section 3.2 behaviours.

These pin the *mechanisms*, not just the outcomes: checkpoint cadence,
cumulative-NAK repetition depth, exactly-one-retransmission-per-NAK,
sequential renumbering, and implicit-acknowledgement timing — observed
on the wire by intercepting the control channel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CheckpointFrame, LamsDlcConfig, lams_dlc_pair
from repro.simulator import FullDuplexLink, PerfectChannel, Simulator, StreamRegistry

RATE = 100e6
DELAY = 0.010
RTT = 2 * DELAY
W_CP = 0.005
C_DEPTH = 3


class ScriptedErrors:
    """Error model corrupting exactly the frames at the given indices."""

    def __init__(self, corrupt_indices: set[int]):
        self.corrupt_indices = corrupt_indices
        self._count = 0

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        index = self._count
        self._count += 1
        return index in self.corrupt_indices


def build(sim, iframe_errors=None):
    link = FullDuplexLink(
        sim, bit_rate=RATE, propagation_delay=DELAY, name="c",
        iframe_errors=iframe_errors or PerfectChannel(),
        cframe_errors=PerfectChannel(),
        streams=StreamRegistry(seed=1),
    )
    config = LamsDlcConfig(checkpoint_interval=W_CP, cumulation_depth=C_DEPTH)
    delivered = []
    a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)

    # Intercept checkpoint commands on the wire (reverse channel).
    checkpoints: list[tuple[float, CheckpointFrame, bool]] = []
    original = link.reverse.receiver

    def intercept(frame, corrupted):
        if isinstance(frame, CheckpointFrame):
            checkpoints.append((sim.now, frame, corrupted))
        original(frame, corrupted)

    link.reverse.attach_receiver(intercept)
    a.start(send=True, receive=False)
    b.start(send=False, receive=True)
    return link, a, b, delivered, checkpoints


class TestCheckpointCadence:
    def test_issue_times_are_exact_multiples_of_wcp(self):
        sim = Simulator()
        _, a, b, _, checkpoints = build(sim)
        sim.run(until=0.200)
        issue_times = [cp.issue_time for _, cp, _ in checkpoints]
        assert len(issue_times) >= 30
        for k, when in enumerate(issue_times, start=1):
            assert when == pytest.approx(k * W_CP, abs=1e-9)

    def test_indices_consecutive(self):
        sim = Simulator()
        _, a, b, _, checkpoints = build(sim)
        sim.run(until=0.200)
        indices = [cp.cp_index for _, cp, _ in checkpoints]
        assert indices == list(range(len(indices)))


class TestCumulativeNak:
    def corrupt_one(self):
        """Corrupt exactly the 11th I-frame of a 100-frame transfer."""
        sim = Simulator()
        link, a, b, delivered, checkpoints = build(
            sim, iframe_errors=ScriptedErrors({10})
        )
        for i in range(100):
            a.accept(("pkt", i))
        sim.run(until=2.0)
        return a, b, delivered, checkpoints

    def test_nak_repeated_exactly_c_depth_times(self):
        """The error entry appears in exactly C_depth consecutive
        checkpoints (Section 3.2's cumulation), then expires."""
        a, b, delivered, checkpoints = self.corrupt_one()
        with_naks = [cp for _, cp, _ in checkpoints if cp.naks]
        assert len(with_naks) == C_DEPTH
        indices = [cp.cp_index for cp in with_naks]
        assert indices == list(range(indices[0], indices[0] + C_DEPTH))
        # All three carry the same (single) sequence number.
        assert {cp.naks for cp in with_naks} == {with_naks[0].naks}

    def test_exactly_one_retransmission(self):
        """C_depth repeats of the NAK must cause exactly one re-send."""
        a, b, delivered, checkpoints = self.corrupt_one()
        assert a.sender.retransmissions == 1
        assert a.sender.retransmissions_by_cause["nak"] == 1
        assert sorted(p[1] for p in delivered) == list(range(100))

    def test_retransmission_renumbered_sequentially(self):
        """The re-sent frame takes the next sequence number in transmit
        order — N(S) = 100 after frames 0..99 (Section 3.2/3.3)."""
        sim = Simulator()
        link, a, b, delivered, checkpoints = build(
            sim, iframe_errors=ScriptedErrors({10})
        )
        seen = []
        original = link.forward.receiver

        def intercept(frame, corrupted):
            if not frame.is_control:
                seen.append(frame.seq)
            original(frame, corrupted)

        link.forward.attach_receiver(intercept)
        for i in range(100):
            a.accept(("pkt", i))
        sim.run(until=2.0)
        assert len(seen) == 101
        assert seen[:100] == list(range(100))
        assert seen[100] == 100  # the renumbered retransmission

    def test_release_at_first_covering_checkpoint(self):
        """Implicit positive ack: a frame is released by the first valid
        checkpoint issued after its arrival, not earlier."""
        sim = Simulator()
        _, a, b, delivered, checkpoints = build(sim)
        a.accept(("pkt", 0))
        sim.run(until=2.0)
        # Frame arrives at ~DELAY + t_f; the first checkpoint issued
        # after that covers it and reaches the sender DELAY later.
        t_f = LamsDlcConfig().iframe_bits / RATE
        arrival = t_f + DELAY
        first_covering_issue = (int(arrival / W_CP) + 1) * W_CP
        assert a.sender.releases == 1
        # Holding time = (covering checkpoint's issue time + transit back)
        # minus the send time (0): the implicit-ack timing, exactly.
        measured = a.sender.mean_holding_time
        assert measured == pytest.approx(first_covering_issue + DELAY, rel=0.02)


class TestFrontier:
    def test_frontier_tracks_highest_transmit_index(self):
        sim = Simulator()
        _, a, b, delivered, checkpoints = build(sim)
        for i in range(50):
            a.accept(("pkt", i))
        sim.run(until=1.0)
        final_frontier = checkpoints[-1][1].frontier
        assert final_frontier == 49

    def test_frontier_none_before_any_frame(self):
        sim = Simulator()
        _, a, b, delivered, checkpoints = build(sim)
        # First checkpoint is issued at 5 ms and arrives ~15 ms.
        sim.run(until=0.018)
        assert checkpoints, "expected early checkpoints"
        assert all(cp.frontier is None for _, cp, _ in checkpoints)


class TestReceiverTransparency:
    def test_receive_queue_stays_small_at_line_rate(self):
        """Section 4: "provided the receiving buffer can hold t_proc/t_f
        frames at a time, that size is sufficient for transparency."
        At line rate with t_proc < t_f, the receive queue must never
        exceed a couple of frames."""
        sim = Simulator()
        _, a, b, delivered, checkpoints = build(sim)
        for i in range(2000):
            a.accept(("pkt", i))
        peak = {"value": 0}

        def watch():
            peak["value"] = max(peak["value"], b.receiver.receive_queue_length)
            if sim.now < 0.5:
                sim.schedule(1e-5, watch)

        watch()
        sim.run(until=1.0)
        assert len(delivered) == 2000
        # t_proc = 10 us, t_f = 82.7 us: the paper's bound is one frame
        # of slack; allow two for event-ordering jitter.
        assert peak["value"] <= 2

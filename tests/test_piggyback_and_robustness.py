"""Piggybacked flow control (Section 3.1), wire-level end-to-end
integration, and broadened robustness properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.core.wire import decode_frame, encode_frame, WireFormatError
from repro.core.frames import CheckpointFrame, IFrame
from repro.hdlc import HdlcConfig, hdlc_pair
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    GilbertElliottChannel,
    Simulator,
    StreamRegistry,
)

RATE = 100e6
DELAY = 0.010


def make_link(sim, seed=1, iframe_ber=0.0, cframe_ber=0.0):
    return FullDuplexLink(
        sim, bit_rate=RATE, propagation_delay=DELAY, name="p",
        iframe_errors=BernoulliChannel(iframe_ber),
        cframe_errors=BernoulliChannel(cframe_ber),
        streams=StreamRegistry(seed=seed),
    )


class TestPiggybackFlowControl:
    def duplex_congested(self, piggyback: bool):
        """A<->B duplex; B's receive queue congests; B sends data too."""
        sim = Simulator()
        link = make_link(sim, seed=2)
        config = LamsDlcConfig(
            checkpoint_interval=0.050,  # slow checkpoints: piggyback matters
            cumulation_depth=3,
            receive_high_watermark=16,
            receive_low_watermark=4,
            piggyback_flow_control=piggyback,
        )
        delivered_a, delivered_b = [], []
        a, b = lams_dlc_pair(
            sim, link, config,
            deliver_a=delivered_a.append, deliver_b=delivered_b.append,
            delivery_interval_b=300e-6,  # B drains slowly -> congests
        )
        a.start()
        b.start()
        for i in range(2000):
            a.accept(("a2b", i))
        for i in range(500):
            b.accept(("b2a", i))
        sim.run(until=1.0)
        return a, b, delivered_a, delivered_b

    def test_iframes_carry_stop_bit(self):
        a, b, _, _ = self.duplex_congested(piggyback=True)
        # B's queue congested; its outgoing I-frames carried stop bits
        # which throttled A between (slow) checkpoints.
        assert a.sender.flow.min_fraction_seen < 1.0

    def test_disabled_piggyback_relies_on_checkpoints_only(self):
        a_on, *_ = self.duplex_congested(piggyback=True)
        a_off, *_ = self.duplex_congested(piggyback=False)
        # With 50 ms checkpoints the piggybacked path reacts more: at
        # least as many stop indications as checkpoint-only.
        assert (
            a_on.sender.flow.stop_indications
            >= a_off.sender.flow.stop_indications
        )

    def test_one_way_traffic_unaffected(self):
        """No reverse I-frames: piggybacking must change nothing."""
        results = []
        for piggyback in (True, False):
            sim = Simulator()
            link = make_link(sim, seed=3)
            config = LamsDlcConfig(
                checkpoint_interval=0.005, cumulation_depth=3,
                piggyback_flow_control=piggyback,
            )
            delivered = []
            a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)
            a.start(send=True, receive=False)
            b.start(send=False, receive=True)
            for i in range(500):
                a.accept(("pkt", i))
            sim.run(until=2.0)
            results.append((len(delivered), a.sender.iframes_sent))
        assert results[0] == results[1]

    def test_rate_limit_one_application_per_interval(self):
        """Piggybacked bits apply at most once per checkpoint interval."""
        sim = Simulator()
        link = make_link(sim, seed=4)
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        a, b = lams_dlc_pair(sim, link, config)
        sender = a.sender
        sender.note_piggyback_stop_go(True)
        first = sender.flow.stop_indications
        sender.note_piggyback_stop_go(True)  # same instant: ignored
        assert sender.flow.stop_indications == first


class ByteChannelHarness:
    """Sends frames as real octets with bit-level corruption, then
    decodes with CRC — the wire format exercising assumption 9 for real."""

    def __init__(self, ber: float, seed: int = 0):
        self.ber = ber
        self.rng = np.random.default_rng(seed)

    def transmit(self, data: bytes) -> bytes:
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        flips = self.rng.random(len(bits)) < self.ber
        return np.packbits(bits ^ flips).tobytes()


class TestWireLevelIntegration:
    def test_clean_bytes_roundtrip(self):
        channel = ByteChannelHarness(ber=0.0)
        frame = IFrame(seq=5, payload=None, size_bits=8, transmit_index=9)
        received = channel.transmit(encode_frame(frame, payload=b"data!"))
        decoded = decode_frame(received)
        assert isinstance(decoded, IFrame) and decoded.seq == 5

    def test_corrupted_bytes_always_detected(self):
        """10,000 corrupted transmissions: zero undetected errors.

        This is assumption 9 ("no undetectable errors") validated at the
        byte level through the real CRC pipeline.
        """
        channel = ByteChannelHarness(ber=2e-3, seed=7)
        frame = IFrame(seq=1, payload=None, size_bits=8, transmit_index=1)
        encoded = encode_frame(frame, payload=b"payload-bytes" * 8)
        undetected = 0
        corrupted_count = 0
        for _ in range(10_000):
            received = channel.transmit(encoded)
            if received == encoded:
                continue
            corrupted_count += 1
            try:
                decoded = decode_frame(received)
            except WireFormatError:
                continue  # detected, as required
            undetected += 1
        assert corrupted_count > 1000, "test should actually corrupt frames"
        assert undetected == 0

    def test_checkpoint_corruption_detected(self):
        channel = ByteChannelHarness(ber=5e-3, seed=8)
        frame = CheckpointFrame(cp_index=2, issue_time=1.0, naks=(3, 4), frontier=9)
        encoded = encode_frame(frame)
        detected = 0
        for _ in range(2000):
            received = channel.transmit(encoded)
            if received == encoded:
                continue
            with pytest.raises(WireFormatError):
                decode_frame(received)
            detected += 1
        assert detected > 100


class TestBroadRobustness:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_hdlc_exactly_once_any_seed(self, seed):
        sim = Simulator()
        link = make_link(sim, seed=seed, iframe_ber=1e-5, cframe_ber=1e-6)
        config = HdlcConfig(window_size=32, sequence_bits=7, timeout=0.06)
        delivered = []
        a, b = hdlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start()
        n = 300
        for i in range(n):
            a.accept(("pkt", i))
        sim.run(until=60.0)
        assert [p[1] for p in delivered] == list(range(n))

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        outages=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=0.3),
                st.floats(min_value=0.001, max_value=0.015),
            ),
            min_size=1, max_size=3,
        ),
    )
    def test_lams_zero_loss_under_multiple_outages(self, seed, outages):
        sim = Simulator()
        link = make_link(sim, seed=seed, iframe_ber=1e-6, cframe_ber=1e-7)
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        delivered = []
        a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        n = 300
        for i in range(n):
            a.accept(("pkt", i))
        cursor = 0.0
        for start, length in outages:
            begin = cursor + start
            sim.schedule_at(begin, link.down)
            sim.schedule_at(begin + length, link.up)
            cursor = begin + length
        sim.run(until=60.0)
        delivered_ids = {p[1] for p in delivered}
        held_ids = {p[1] for p in a.sender.held_payloads()}
        assert delivered_ids | held_ids == set(range(n))

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        mean_burst=st.sampled_from([0.001, 0.005, 0.02]),
    )
    def test_lams_zero_loss_under_bursts(self, seed, mean_burst):
        sim = Simulator()
        # One fresh Gilbert-Elliott instance per channel direction: the
        # model's state trajectory requires FIFO frame times, which only
        # holds within a single direction.
        def ge_iframe():
            return GilbertElliottChannel(
                good_ber=1e-7, bad_ber=1e-3, mean_good=0.1,
                mean_bad=mean_burst, bit_rate=RATE,
            )

        def ge_cframe():
            return GilbertElliottChannel(
                good_ber=1e-8, bad_ber=1e-4, mean_good=0.1,
                mean_bad=mean_burst, bit_rate=RATE,
            )

        link = FullDuplexLink(
            sim, bit_rate=RATE, propagation_delay=DELAY, name="ge",
            iframe_errors=ge_iframe(), cframe_errors=ge_cframe(),
            reverse_iframe_errors=ge_iframe(),
            reverse_cframe_errors=ge_cframe(),
            streams=StreamRegistry(seed=seed),
        )
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=5)
        delivered = []
        a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        n = 300
        for i in range(n):
            a.accept(("pkt", i))
        sim.run(until=60.0)
        delivered_ids = {p[1] for p in delivered}
        held_ids = {p[1] for p in a.sender.held_payloads()}
        assert delivered_ids | held_ids == set(range(n))

"""Tests for the statistical replication helpers."""

from __future__ import annotations

import math

import pytest

from repro.experiments.sweeps import ReplicationSummary, replicate, replicate_all


class TestReplicationSummary:
    def test_mean_and_stdev(self):
        summary = ReplicationSummary("m", (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0))
        assert summary.mean == pytest.approx(5.0)
        assert summary.stdev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_half_width_formula(self):
        summary = ReplicationSummary("m", (1.0, 2.0, 3.0, 4.0))
        expected = 1.959963984540054 * summary.stdev / 2.0
        assert summary.half_width == pytest.approx(expected)
        assert summary.low == pytest.approx(summary.mean - expected)
        assert summary.high == pytest.approx(summary.mean + expected)

    def test_single_sample_degenerate(self):
        summary = ReplicationSummary("m", (3.0,))
        assert summary.stdev == 0.0
        assert summary.half_width == 0.0

    def test_overlap_detection(self):
        a = ReplicationSummary("m", (1.0, 1.1, 0.9, 1.0))
        b = ReplicationSummary("m", (1.05, 1.1, 1.0, 1.15))
        c = ReplicationSummary("m", (5.0, 5.1, 4.9, 5.0))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_relative_half_width(self):
        summary = ReplicationSummary("m", (10.0, 10.0, 10.0, 14.0))
        assert summary.relative_half_width() == pytest.approx(
            summary.half_width / summary.mean
        )


class TestReplicate:
    def measure(self, seed):
        return {"metric_a": float(seed), "metric_b": float(seed * 2)}

    def test_replicate_collects_samples(self):
        summary = replicate(self.measure, "metric_a", seeds=[1, 2, 3])
        assert summary.samples == (1.0, 2.0, 3.0)
        assert summary.mean == 2.0

    def test_replicate_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            replicate(lambda seed: {"x": float("nan")}, "x", seeds=[1])

    def test_replicate_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(self.measure, "metric_a", seeds=[])

    def test_replicate_all_shares_runs(self):
        calls = []

        def measure(seed):
            calls.append(seed)
            return self.measure(seed)

        summaries = replicate_all(measure, ["metric_a", "metric_b"], seeds=[1, 2])
        assert calls == [1, 2]  # one run per seed, not per metric
        assert summaries["metric_b"].samples == (2.0, 4.0)

    def test_deterministic_simulation_gives_zero_spread(self):
        """Same seed twice: the DES must reproduce exactly."""
        from repro.experiments.runner import measure_batch_transfer
        from repro.workloads import preset

        summary = replicate(
            lambda seed: measure_batch_transfer(
                preset("short_hop"), "lams", 100, seed=7, max_time=30.0
            ),
            metric="duration",
            seeds=[0, 1],  # seed arg ignored inside: fixed seed=7
        )
        assert summary.stdev == 0.0

"""Tests for the statistical replication helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.sweeps import (
    ReplicationSummary,
    StreamingSummary,
    replicate,
    replicate_all,
    welford,
)


class TestReplicationSummary:
    def test_mean_and_stdev(self):
        summary = ReplicationSummary("m", (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0))
        assert summary.mean == pytest.approx(5.0)
        assert summary.stdev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_half_width_formula(self):
        summary = ReplicationSummary("m", (1.0, 2.0, 3.0, 4.0))
        expected = 1.959963984540054 * summary.stdev / 2.0
        assert summary.half_width == pytest.approx(expected)
        assert summary.low == pytest.approx(summary.mean - expected)
        assert summary.high == pytest.approx(summary.mean + expected)

    def test_single_sample_degenerate(self):
        summary = ReplicationSummary("m", (3.0,))
        assert summary.stdev == 0.0
        assert summary.half_width == 0.0

    def test_overlap_detection(self):
        a = ReplicationSummary("m", (1.0, 1.1, 0.9, 1.0))
        b = ReplicationSummary("m", (1.05, 1.1, 1.0, 1.15))
        c = ReplicationSummary("m", (5.0, 5.1, 4.9, 5.0))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_relative_half_width(self):
        summary = ReplicationSummary("m", (10.0, 10.0, 10.0, 14.0))
        assert summary.relative_half_width() == pytest.approx(
            summary.half_width / summary.mean
        )


finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e12, max_value=1e12)


class TestStreamingSummary:
    def test_push_matches_batch(self):
        values = (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0)
        stream = StreamingSummary("m")
        for value in values:
            stream.push(value)
        batch = ReplicationSummary("m", values)
        assert stream.count == len(values)
        assert stream.mean == batch.mean
        assert stream.stdev == batch.stdev
        assert stream.half_width == batch.half_width

    def test_single_sample_degenerate(self):
        stream = StreamingSummary("m")
        stream.push(3.0)
        assert stream.stdev == 0.0
        assert stream.half_width == 0.0

    def test_empty_accumulator_is_inert(self):
        stream = StreamingSummary("m")
        assert stream.count == 0
        assert stream.stdev == 0.0
        assert stream.half_width == 0.0
        merged = StreamingSummary("m")
        merged.merge(stream)
        assert merged.count == 0

    def test_from_samples(self):
        values = (1.0, 2.0, 3.0)
        assert StreamingSummary.from_samples("m", values).mean == (
            ReplicationSummary("m", values).mean
        )

    def test_merge_is_exact_on_disjoint_halves(self):
        # Chan et al. merge: mathematically exact, so the merged count
        # and the aggregate sums agree with the full batch to float
        # tolerance (merge order differs from push order, so only
        # approximate equality is guaranteed — the bit-identical path
        # is push-in-order, which run_sweep uses).
        values = [float(v) for v in range(10)]
        left, right = StreamingSummary("m"), StreamingSummary("m")
        for v in values[:5]:
            left.push(v)
        for v in values[5:]:
            right.push(v)
        left.merge(right)
        batch = ReplicationSummary("m", tuple(values))
        assert left.count == 10
        assert left.mean == pytest.approx(batch.mean, abs=1e-12)
        assert left.stdev == pytest.approx(batch.stdev, abs=1e-12)

    def test_overlap_and_relative_match_batch(self):
        values = (10.0, 10.0, 10.0, 14.0)
        stream = StreamingSummary.from_samples("m", values)
        batch = ReplicationSummary("m", values)
        assert stream.relative_half_width() == batch.relative_half_width()
        other = ReplicationSummary("m", (10.5, 11.0, 12.0))
        assert stream.overlaps(other) == batch.overlaps(other)

    @given(st.lists(finite_floats, min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_streamed_bit_identical_to_batch(self, values):
        """The headline contract: streaming aggregation is not merely
        close to batch aggregation — it is *bit-identical*, because
        ReplicationSummary and StreamingSummary run the same welford()
        recurrence in the same order."""
        stream = StreamingSummary("m")
        for value in values:
            stream.push(value)
        batch = ReplicationSummary("m", tuple(values))
        assert stream.count == batch.count
        assert stream.mean == batch.mean          # exact, not approx
        assert stream.stdev == batch.stdev        # exact, not approx
        assert stream.half_width == batch.half_width
        assert stream.low == batch.low
        assert stream.high == batch.high

    @given(st.lists(finite_floats, min_size=2, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_welford_matches_two_pass(self, values):
        count, mean, m2 = welford(values)
        assert count == len(values)
        assert mean == pytest.approx(sum(values) / len(values),
                                     rel=1e-9, abs=1e-6)
        two_pass = sum((v - mean) ** 2 for v in values)
        assert m2 == pytest.approx(two_pass, rel=1e-6, abs=1e-6)


class TestReplicate:
    def measure(self, seed):
        return {"metric_a": float(seed), "metric_b": float(seed * 2)}

    def test_replicate_collects_samples(self):
        summary = replicate(self.measure, "metric_a", seeds=[1, 2, 3])
        assert summary.samples == (1.0, 2.0, 3.0)
        assert summary.mean == 2.0

    def test_replicate_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            replicate(lambda seed: {"x": float("nan")}, "x", seeds=[1])

    def test_replicate_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(self.measure, "metric_a", seeds=[])

    def test_replicate_all_shares_runs(self):
        calls = []

        def measure(seed):
            calls.append(seed)
            return self.measure(seed)

        summaries = replicate_all(measure, ["metric_a", "metric_b"], seeds=[1, 2])
        assert calls == [1, 2]  # one run per seed, not per metric
        assert summaries["metric_b"].samples == (2.0, 4.0)

    def test_deterministic_simulation_gives_zero_spread(self):
        """Same seed twice: the DES must reproduce exactly."""
        from repro.experiments.runner import measure_batch_transfer
        from repro.workloads import preset

        summary = replicate(
            lambda seed: measure_batch_transfer(
                preset("short_hop"), "lams", 100, seed=7, max_time=30.0
            ),
            metric="duration",
            seeds=[0, 1],  # seed arg ignored inside: fixed seed=7
        )
        assert summary.stdev == 0.0

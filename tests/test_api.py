"""Tests for the `repro.api` facade and the endpoint-pair registry.

One factory — :func:`repro.api.make_endpoint_pair` — must build every
executable protocol, aliases and overrides included, and the legacy
per-protocol pair factories must be behaviour-identical shims over it.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.core.config import LamsDlcConfig
from repro.core.endpoint import build_endpoint_pair, pair_factory
from repro.core.protocol import lams_dlc_pair
from repro.hdlc.config import HdlcConfig
from repro.hdlc.protocol import hdlc_pair
from repro.nbdt.config import NbdtConfig
from repro.nbdt.protocol import nbdt_pair
from repro.simulator.engine import Simulator
from repro.simulator.trace import Tracer
from repro.workloads import build_simulation, preset
from repro.workloads.generators import FiniteBatch

ALL_PROTOCOLS = [
    "lams", "lams-dlc", "hdlc", "sr-hdlc", "gbn",
    "nbdt", "nbdt-continuous", "nbdt-multiphase",
]


def _pair(protocol: str, **kwargs):
    scenario = preset("short_hop")
    sim = Simulator()
    link = scenario.build_link(sim, seed=0)
    config = scenario.protocol_config(protocol)
    pair = api.make_endpoint_pair(protocol, sim, link, config, **kwargs)
    return sim, link, pair


class TestResolveProtocol:
    def test_known_aliases(self):
        assert api.resolve_protocol("lams") == ("lams", {})
        assert api.resolve_protocol("LAMS-DLC") == ("lams", {})
        assert api.resolve_protocol("gbn") == ("hdlc", {"selective": False})
        assert api.resolve_protocol("nbdt-multiphase") == (
            "nbdt", {"mode": "multiphase"}
        )

    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            api.resolve_protocol("tcp")

    def test_available_protocols_cover_families(self):
        names = api.available_protocols()
        for name in ALL_PROTOCOLS:
            assert name in names

    def test_pair_factory_unknown_family(self):
        with pytest.raises(ValueError):
            pair_factory("not-a-family")


class TestMakeEndpointPair:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_builds_structural_endpoints(self, protocol):
        _, _, (a, b) = _pair(protocol)
        assert isinstance(a, api.Endpoint)
        assert isinstance(b, api.Endpoint)
        assert a.name.endswith(".A") and b.name.endswith(".B")

    def test_gbn_turns_off_selective_repeat(self):
        _, _, (a, _) = _pair("gbn")
        assert a.config.selective is False

    def test_sr_hdlc_keeps_selective_repeat(self):
        _, _, (a, _) = _pair("sr-hdlc")
        assert a.config.selective is True

    def test_multiphase_mode_applied(self):
        _, _, (a, _) = _pair("nbdt-multiphase")
        assert a.config.mode == "multiphase"

    def test_explicit_config_fields_survive_aliases(self):
        # An override-free alias must not clobber an explicit config.
        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        config = scenario.nbdt_config(mode="multiphase")
        a, _ = api.make_endpoint_pair("nbdt", sim, link, config)
        assert a.config.mode == "multiphase"

    def test_tracer_threaded_through(self):
        tracer = Tracer()
        _, _, (a, _) = _pair("lams", tracer=tracer)
        assert a.tracer is tracer

    @pytest.mark.parametrize("protocol", ["lams", "hdlc", "gbn", "nbdt"])
    def test_round_trip_delivers(self, protocol):
        sim, _, (a, b) = _pair(protocol, deliver_b=(delivered := []).append)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        FiniteBatch(sim, a, count=50).start()
        sim.run(until=5.0)
        assert len(delivered) == 50

    def test_register_new_family(self):
        calls = []

        @api.register_pair_factory("test-fake-proto")
        def fake(sim, link, config, **kwargs):
            calls.append(config)
            return None, None

        try:
            assert api.resolve_protocol("test-fake-proto") == (
                "test-fake-proto", {}
            )
            build_endpoint_pair("test-fake-proto", Simulator(), None, "cfg")
            assert calls == ["cfg"]
        finally:
            from repro.core import endpoint as registry

            registry._FACTORIES.pop("test-fake-proto", None)
            registry._ALIASES.pop("test-fake-proto", None)


class TestShimEquivalence:
    """The legacy factories defer to the registry and behave identically."""

    def _run(self, build_pair, config_cls):
        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=3)
        delivered = []
        if config_cls is LamsDlcConfig:
            config = scenario.lams_config()
        elif config_cls is HdlcConfig:
            config = scenario.hdlc_config()
        else:
            config = scenario.nbdt_config()
        a, b = build_pair(sim, link, config, deliver_b=delivered.append)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        FiniteBatch(sim, a, count=30).start()
        sim.run(until=5.0)
        return delivered

    @pytest.mark.parametrize("shim,unified,config_cls", [
        (lams_dlc_pair, "lams", LamsDlcConfig),
        (hdlc_pair, "hdlc", HdlcConfig),
        (nbdt_pair, "nbdt", NbdtConfig),
    ])
    def test_shim_matches_unified(self, shim, unified, config_cls):
        via_shim = self._run(shim, config_cls)
        via_api = self._run(
            lambda sim, link, config, **kw: api.make_endpoint_pair(
                unified, sim, link, config, **kw
            ),
            config_cls,
        )
        assert via_shim == via_api
        assert len(via_shim) == 30


class TestBuildSimulation:
    @pytest.mark.parametrize("protocol", ["lams", "hdlc", "gbn",
                                          "nbdt-multiphase"])
    def test_unified_builder_runs(self, protocol):
        setup = build_simulation(preset("short_hop"), protocol, seed=2)
        FiniteBatch(setup.sim, setup.endpoint_a, count=50).start()
        setup.run(until=5.0)
        assert len(setup.delivered) == 50

    def test_matches_legacy_builder(self):
        from repro.workloads import build_lams_simulation

        new = build_simulation(preset("short_hop"), "lams", seed=9)
        old = build_lams_simulation(preset("short_hop"), seed=9)
        for setup in (new, old):
            FiniteBatch(setup.sim, setup.endpoint_a, count=40).start()
            setup.run(until=5.0)
        assert [p for p in new.delivered] == [p for p in old.delivered]

    def test_overrides_reach_config(self):
        setup = build_simulation(
            preset("short_hop"), "lams", seed=0,
            overrides={"cumulation_depth": 7},
        )
        assert setup.endpoint_a.config.cumulation_depth == 7

    def test_api_reexports_builder(self):
        setup = api.build_simulation(preset("short_hop"), "lams", seed=1)
        assert isinstance(setup.endpoint_a, api.Endpoint)


class TestErrorModelRegistry:
    def test_available_names(self):
        names = api.available_error_models()
        for name in ("perfect", "bernoulli", "gilbert-elliott"):
            assert name in names

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown error model"):
            api.make_error_model("carrier-pigeon")

    def test_context_fills_missing_params(self):
        model = api.make_error_model("bernoulli", {"ber": 1e-5, "bit_rate": 1e6})
        assert model.ber == pytest.approx(1e-5)
        # Explicit kwargs beat context.
        model = api.make_error_model("bernoulli", {"ber": 1e-5}, ber=1e-3)
        assert model.ber == pytest.approx(1e-3)

    def test_resolve_variants(self):
        from repro.simulator.errormodel import (
            BernoulliChannel,
            GilbertElliottChannel,
            PerfectChannel,
        )

        assert isinstance(api.resolve_error_model(None), PerfectChannel)
        assert isinstance(api.resolve_error_model(None, ber=1e-6),
                          BernoulliChannel)
        assert isinstance(api.resolve_error_model("perfect"), PerfectChannel)
        by_tuple = api.resolve_error_model(("bernoulli", {"ber": 1e-4}))
        assert by_tuple.ber == pytest.approx(1e-4)
        by_map = api.resolve_error_model({"model": "bernoulli", "ber": 1e-4})
        assert by_map.ber == pytest.approx(1e-4)
        ge = api.resolve_error_model(
            {"model": "gilbert-elliott", "good_ber": 1e-7, "bad_ber": 1e-3,
             "mean_good": 1.0, "mean_bad": 0.01},
            bit_rate=1e6,
        )
        assert isinstance(ge, GilbertElliottChannel)
        instance = BernoulliChannel(1e-2)
        assert api.resolve_error_model(instance) is instance

    def test_resolve_rejects_garbage(self):
        with pytest.raises(ValueError, match="'model' key"):
            api.resolve_error_model({"ber": 1e-4})
        with pytest.raises(TypeError, match="not an error-model spec"):
            api.resolve_error_model(42)

    def test_register_custom_model(self):
        from repro.simulator.errormodel import _ERROR_MODELS, PerfectChannel

        @api.register_error_model("test-always-clean")
        class AlwaysClean(PerfectChannel):
            pass

        try:
            assert "test-always-clean" in api.available_error_models()
            assert isinstance(
                api.resolve_error_model("test-always-clean"), AlwaysClean
            )
        finally:
            _ERROR_MODELS.pop("test-always-clean", None)


class TestFacadeFaultKwargs:
    def test_error_model_kwarg_replaces_channel_models(self):
        from repro.simulator.errormodel import BernoulliChannel

        _, link, _ = _pair("lams", error_model=("bernoulli", {"ber": 1e-3}))
        assert isinstance(link.forward.iframe_errors, BernoulliChannel)
        assert link.forward.iframe_errors.ber == pytest.approx(1e-3)
        assert link.reverse.iframe_errors.ber == pytest.approx(1e-3)

    def test_fault_plan_kwarg_schedules_injector(self):
        from repro.faults import FaultPlan

        plan = FaultPlan.single_outage(start=0.05, duration=0.02)
        sim, link, (a, b) = _pair("lams", fault_plan=plan)
        states = {}
        sim.schedule_at(0.06, lambda: states.update(mid=link.forward.is_up))
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        sim.run(until=0.1)
        assert states["mid"] is False
        assert link.forward.is_up  # restored after the fault window

    def test_build_simulation_error_model_kwarg(self):
        from repro.simulator.errormodel import GilbertElliottChannel

        setup = build_simulation(
            preset("short_hop"), "lams", seed=0,
            error_model={"model": "gilbert-elliott", "good_ber": 1e-7,
                         "bad_ber": 1e-3, "mean_good": 1.0, "mean_bad": 0.01},
        )
        assert isinstance(setup.link.forward.iframe_errors,
                          GilbertElliottChannel)

    def test_build_simulation_rejects_conflicting_error_specs(self):
        from repro.simulator.errormodel import BernoulliChannel

        with pytest.raises(ValueError, match="not both"):
            build_simulation(
                preset("short_hop"), "lams", seed=0,
                error_model="perfect",
                iframe_errors=BernoulliChannel(1e-6),
            )

    def test_build_simulation_fault_plan_populates_setup(self):
        from repro.faults import FaultInjector, FaultPlan, RecoveryMetrics

        plan = FaultPlan.single_outage(start=0.05, duration=0.02)
        setup = build_simulation(
            preset("short_hop"), "lams", seed=0, fault_plan=plan,
        )
        assert isinstance(setup.fault_injector, FaultInjector)
        assert isinstance(setup.recovery, RecoveryMetrics)

    def test_scenario_error_model_fields(self):
        from repro.simulator.errormodel import PerfectChannel

        scenario = preset("short_hop").with_(
            iframe_error_model="perfect", cframe_error_model="perfect",
        )
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        assert isinstance(link.forward.iframe_errors, PerfectChannel)
        assert isinstance(link.forward.cframe_errors, PerfectChannel)


class TestSpecFacade:
    """The kwargs facade is a thin wrapper over the LinkSpec path."""

    def test_topology_surface_is_exported(self):
        for name in ("LinkSpec", "EndpointSpec", "Topology", "NodeSpec",
                     "FlowSpec", "Constellation", "ConstellationBuilder",
                     "build_constellation", "ring_topology",
                     "chain_topology", "grid_topology", "cross_traffic"):
            assert name in api.__all__
            assert hasattr(api, name)

    def test_spec_from_kwargs_migrates_failure_callbacks(self):
        alarm = lambda: None  # noqa: E731
        spec = api.spec_from_kwargs(
            "lams", LamsDlcConfig(),
            config_b=None, deliver_a=None, deliver_b=None,
            error_model=None, fault_plan=None,
            on_failure_a=alarm, delivery_interval_b=0.01,
        )
        assert spec.endpoint_a.on_failure is alarm
        assert spec.endpoint_b.on_failure is None
        assert "on_failure_a" not in spec.extras
        assert spec.extras["delivery_interval_b"] == 0.01

    def test_facade_and_spec_path_build_identical_runs(self):
        """Same seed, same scenario: the legacy facade and a hand-built
        LinkSpec must produce the same delivered sequence."""
        from repro.topology.spec import build_link, instantiate_pair

        scenario = preset("short_hop")

        def run_facade():
            sim = Simulator()
            link = scenario.build_link(sim, seed=3)
            delivered = []
            a, b = api.make_endpoint_pair(
                "lams", sim, link, scenario.lams_config(),
                deliver_b=delivered.append,
            )
            a.start(send=True, receive=False)
            b.start(send=False, receive=True)
            FiniteBatch(sim, a, count=400).start()
            sim.run(until=1.0)
            return delivered

        def run_spec():
            sim = Simulator()
            spec = api.LinkSpec(
                name=scenario.name,
                scenario=scenario,
                config=scenario.lams_config(),
                seed=3,
                endpoint_a=api.EndpointSpec(receive=False),
            )
            delivered = []
            spec = spec.with_(
                endpoint_b=api.EndpointSpec(deliver=delivered.append,
                                            send=False))
            link = build_link(spec, sim)
            a, b = instantiate_pair(spec, sim, link)
            a.start(send=True, receive=False)
            b.start(send=False, receive=True)
            FiniteBatch(sim, a, count=400).start()
            sim.run(until=1.0)
            return delivered

        assert run_facade() == run_spec()


class TestBackendRegistry:
    def test_available_backends_lists_des_and_udp(self):
        names = api.available_backends()
        assert "des" in names
        assert "udp" in names

    def test_resolve_backend_lazy_loads_udp(self):
        impl = api.resolve_backend("udp")
        assert impl.name == "udp"
        assert impl.families == frozenset({"lams"})
        assert impl.build_simulation is not None

    def test_resolve_backend_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            api.resolve_backend("carrier-pigeon")

    def test_des_backend_carries_every_family(self):
        impl = api.resolve_backend("des")
        assert impl.families is None

    def test_udp_backend_rejects_des_substrate(self):
        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        with pytest.raises(TypeError, match="AsyncioClock"):
            api.make_endpoint_pair(
                "lams", sim, link, scenario.lams_config(), backend="udp")

    def test_udp_backend_rejects_foreign_families(self):
        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        with pytest.raises(ValueError, match="not available on backend"):
            api.make_endpoint_pair(
                "hdlc", sim, link, HdlcConfig(), backend="udp")

    def test_make_endpoint_pair_unknown_backend(self):
        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        with pytest.raises(ValueError, match="unknown backend"):
            api.make_endpoint_pair(
                "lams", sim, link, scenario.lams_config(), backend="tcp")

    def test_build_simulation_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            api.build_simulation(preset("short_hop"), backend="smoke-signals")


class TestDeprecatedShims:
    """The per-protocol pair factories warn but keep working."""

    def test_lams_dlc_pair_warns(self):
        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        with pytest.warns(DeprecationWarning, match="lams_dlc_pair"):
            a, b = lams_dlc_pair(sim, link, scenario.lams_config())
        assert a is not None and b is not None

    def test_hdlc_pair_warns(self):
        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        with pytest.warns(DeprecationWarning, match="hdlc_pair"):
            hdlc_pair(sim, link, HdlcConfig())

    def test_nbdt_pair_warns(self):
        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        with pytest.warns(DeprecationWarning, match="nbdt_pair"):
            nbdt_pair(sim, link, NbdtConfig())

    def test_facade_path_stays_silent(self):
        import warnings as _warnings

        scenario = preset("short_hop")
        sim = Simulator()
        link = scenario.build_link(sim, seed=0)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            api.make_endpoint_pair("lams", sim, link, scenario.lams_config())

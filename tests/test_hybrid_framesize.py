"""Unit tests for the hybrid ARQ/FEC and frame-size analysis modules."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import framesize, hybrid
from repro.fec.codec import HammingCodecModel, IdentityCodec, RepetitionCodecModel
from repro.workloads import preset


def base_params():
    return preset("nominal").model_parameters()


class TestType1Parameters:
    def test_identity_codec_changes_nothing(self):
        base = base_params()
        coded = hybrid.type1_parameters(base, 8272, 1e-6, IdentityCodec())
        assert coded.iframe_time == pytest.approx(base.iframe_time)

    def test_codec_stretches_frame_time_by_rate(self):
        base = base_params()
        codec = RepetitionCodecModel(n=3)
        coded = hybrid.type1_parameters(base, 8272, 1e-6, codec)
        assert coded.iframe_time == pytest.approx(base.iframe_time * 3)

    def test_codec_reduces_p_f_on_noisy_channel(self):
        base = base_params()
        uncoded = hybrid.type1_parameters(base, 8272, 1e-4, IdentityCodec())
        coded = hybrid.type1_parameters(base, 8272, 1e-4, HammingCodecModel())
        assert coded.p_f < uncoded.p_f

    def test_invalid_inputs(self):
        base = base_params()
        with pytest.raises(ValueError):
            hybrid.type1_parameters(base, 0, 1e-6, IdentityCodec())
        with pytest.raises(ValueError):
            hybrid.type1_parameters(base, 100, 1.0, IdentityCodec())


class TestCodecSweep:
    def test_rows_cover_the_ladder(self):
        rows = hybrid.codec_sweep(base_params(), 8272, 1e-4)
        assert [row["codec"] for row in rows] == [name for name, _ in hybrid.STANDARD_LADDER]

    def test_goodput_bounded(self):
        for channel_ber in (1e-6, 1e-4, 1e-3):
            for row in hybrid.codec_sweep(base_params(), 8272, channel_ber):
                assert 0.0 <= row["goodput"] <= 1.0

    def test_best_codec_crossover(self):
        clean_winner, _ = hybrid.best_codec(base_params(), 8272, 1e-6)
        noisy_winner, _ = hybrid.best_codec(base_params(), 8272, 1e-3)
        assert clean_winner == "none"
        assert noisy_winner != "none"

    def test_best_codec_returns_max(self):
        rows = hybrid.codec_sweep(base_params(), 8272, 1e-4)
        name, goodput = hybrid.best_codec(base_params(), 8272, 1e-4)
        assert goodput == pytest.approx(max(row["goodput"] for row in rows))
        assert any(row["codec"] == name for row in rows)


class TestFrameSize:
    def test_goodput_zero_at_certain_corruption(self):
        assert framesize.goodput_per_channel_bit(10**7, 80, 1e-3) == 0.0

    def test_goodput_approaches_payload_fraction_at_zero_ber(self):
        assert framesize.goodput_per_channel_bit(8192, 80, 0.0) == pytest.approx(
            8192 / 8272
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            framesize.goodput_per_channel_bit(0, 80, 1e-6)
        with pytest.raises(ValueError):
            framesize.goodput_per_channel_bit(100, -1, 1e-6)
        with pytest.raises(ValueError):
            framesize.optimal_frame_size_approx(0, 1e-6)

    def test_zero_ber_optimum_unbounded(self):
        assert framesize.optimal_frame_size_approx(80, 0.0) == math.inf
        assert framesize.optimal_frame_size(80, 0.0) == 10_000_000

    def test_approx_satisfies_stationarity(self):
        """L(L+h) = h/BER at the approximate optimum."""
        ber, h = 1e-5, 80
        optimum = framesize.optimal_frame_size_approx(h, ber)
        assert optimum * (optimum + h) == pytest.approx(h / ber, rel=1e-9)

    @given(
        ber=st.sampled_from([1e-7, 1e-6, 1e-5, 1e-4]),
        overhead=st.sampled_from([16, 80, 256]),
    )
    def test_exact_optimum_beats_neighbours(self, ber, overhead):
        optimum = framesize.optimal_frame_size(overhead, ber)
        best = framesize.goodput_per_channel_bit(optimum, overhead, ber)
        for neighbour in (optimum // 2, optimum * 2):
            if neighbour >= 8:
                assert best >= framesize.goodput_per_channel_bit(
                    neighbour, overhead, ber
                )

    def test_sweep_marks_optimal_region(self):
        rows = framesize.frame_size_sweep(80, 1e-5, [256, 2789, 100_000])
        flags = {row["payload_bits"]: row["is_optimal_region"] for row in rows}
        assert flags[2789] is True
        assert flags[256] is False and flags[100_000] is False

"""Tests for the asyncio-UDP transport backend.

No pytest-asyncio in the toolchain: async pieces run under
``asyncio.run`` inside plain test functions.  Real sockets bind to
127.0.0.1 with ephemeral ports, so the tests are hermetic.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.frames import CheckpointFrame, IFrame
from repro.core.wire import encode_frame
from repro.simulator import StreamRegistry, Tracer
from repro.transport import (
    AsyncioClock,
    Impairments,
    UdpLink,
    corrupt_crc,
    decode_datagram,
    golden_scenario,
    run_transfer,
)
from repro.transport.conformance import make_payload, payload_digest, payload_index


# -- AsyncioClock ----------------------------------------------------------


class TestAsyncioClock:
    def test_pump_runs_due_callbacks_in_order(self):
        async def scenario():
            clock = AsyncioClock()
            fired: list[str] = []
            clock.schedule(0.0, fired.append, "a")
            clock.schedule(0.01, fired.append, "b")
            clock.kick()
            await clock.drain(settle=0.03)
            clock.close()
            return fired

        assert asyncio.run(scenario()) == ["a", "b"]

    def test_now_is_monotone_across_pumps(self):
        async def scenario():
            clock = AsyncioClock()
            stamps: list[float] = []
            clock.schedule(0.0, lambda: stamps.append(clock.now))
            clock.schedule(0.005, lambda: stamps.append(clock.now))
            clock.kick()
            await clock.drain(settle=0.02)
            clock.close()
            return stamps

        stamps = asyncio.run(scenario())
        assert stamps == sorted(stamps)

    def test_timer_fires_and_cancel_suppresses(self):
        async def scenario():
            clock = AsyncioClock()
            fired: list[str] = []
            live = clock.timer(lambda: fired.append("live"))
            dead = clock.timer(lambda: fired.append("dead"))
            live.start(0.005)
            dead.start(0.005)
            dead.cancel()
            clock.kick()
            await clock.drain(settle=0.03)
            clock.close()
            return fired

        assert asyncio.run(scenario()) == ["live"]

    def test_pinned_epoch_starts_now_on_shared_axis(self):
        async def scenario():
            pinned = AsyncioClock(epoch=0.0)
            private = AsyncioClock()
            loop_now = asyncio.get_running_loop().time()
            try:
                return pinned.now, private.now, loop_now
            finally:
                pinned.close()
                private.close()

        pinned_now, private_now, loop_now = asyncio.run(scenario())
        assert pinned_now == pytest.approx(loop_now, abs=0.05)
        assert private_now == pytest.approx(0.0, abs=0.05)

    def test_run_is_refused(self):
        async def scenario():
            clock = AsyncioClock()
            try:
                with pytest.raises(RuntimeError):
                    clock.run(until=1.0)
            finally:
                clock.close()

        asyncio.run(scenario())


# -- Impairments -----------------------------------------------------------


class TestImpairments:
    def test_from_scenario_carries_link_conditions(self):
        scenario = golden_scenario("lossy")
        imp = Impairments.from_scenario(scenario)
        assert imp.propagation_delay == pytest.approx(scenario.one_way_delay)
        assert imp.iframe_ber == scenario.iframe_ber
        assert imp.drop is None

    def test_drop_shorthand_builds_uniform_loss(self):
        scenario = golden_scenario("clean")
        imp = Impairments.from_scenario(scenario, drop=0.25)
        _, _, drop_model = imp.resolve_models(scenario.bit_rate)
        assert drop_model is not None
        rng = StreamRegistry(seed=1).get("drop-test")
        outcomes = {drop_model.frame_error(0.0, 1, rng) for _ in range(200)}
        assert outcomes == {True, False}

    def test_with_replaces_fields(self):
        imp = Impairments(propagation_delay=0.01)
        assert imp.with_(jitter=0.002).jitter == 0.002
        assert imp.jitter == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Impairments(propagation_delay=-1.0)


# -- datagram decode -------------------------------------------------------


class TestDecodeDatagram:
    def test_clean_frame(self):
        data = encode_frame(CheckpointFrame(
            cp_index=1, issue_time=0.5, naks=(), frontier=None,
            enforced=False, stop_go=False, size_bits=96))
        frame, corrupted = decode_datagram(data)
        assert isinstance(frame, CheckpointFrame)
        assert corrupted is False

    def test_crc_damage_salvages_header(self):
        data = encode_frame(
            IFrame(seq=3, payload=b"xyz", size_bits=128, transmit_index=9),
            b"xyz")
        frame, corrupted = decode_datagram(corrupt_crc(data))
        assert corrupted is True
        assert isinstance(frame, IFrame)
        assert frame.seq == 3

    def test_garbage_is_undecodable(self):
        frame, corrupted = decode_datagram(b"\xff\xfenot a frame")
        assert frame is None
        assert corrupted is True


# -- live UDP channel ------------------------------------------------------


class TestUdpLink:
    def _open_link(self, clock, scenario, **kwargs):
        return UdpLink.open(
            clock, name="t", bit_rate=scenario.bit_rate,
            impairments=Impairments.from_scenario(scenario, **kwargs),
            seed=3, tracer=Tracer(),
        )

    def test_frames_cross_real_sockets(self):
        async def scenario():
            clock = AsyncioClock()
            link = await self._open_link(clock, golden_scenario("clean"))
            heard_a: list = []
            heard_b: list = []
            link.attach(lambda f, c: heard_a.append((f, c)),
                        lambda f, c: heard_b.append((f, c)))
            frame = IFrame(seq=1, payload=b"ping", size_bits=2128,
                           transmit_index=0)
            link.forward.send(frame)
            clock.kick()
            await clock.drain(settle=link.round_trip_time() + 0.05)
            # drain() watches the heap; the hop across the OS socket is
            # asynchronous on top of it, so give the loop a beat.
            await asyncio.sleep(0.05)
            link.close()
            clock.close()
            await asyncio.sleep(0)
            return heard_a, heard_b

        heard_a, heard_b = asyncio.run(scenario())
        assert heard_a == []  # A hears the reverse direction only
        assert len(heard_b) == 1
        frame, corrupted = heard_b[0]
        assert frame.seq == 1 and corrupted is False

    def test_outage_loses_frames(self):
        async def scenario():
            clock = AsyncioClock()
            link = await self._open_link(clock, golden_scenario("clean"))
            heard: list = []
            link.attach(lambda f, c: None, lambda f, c: heard.append(f))
            link.down()
            link.forward.send(IFrame(seq=1, payload=b"x", size_bits=2128,
                                     transmit_index=0))
            clock.kick()
            await clock.drain(settle=link.round_trip_time() + 0.05)
            lost = link.forward.frames_lost_outage
            link.close()
            clock.close()
            await asyncio.sleep(0)
            return heard, lost

        heard, lost = asyncio.run(scenario())
        assert heard == []
        assert lost == 1

    def test_round_trip_time_matches_scenario(self):
        async def scenario():
            clock = AsyncioClock()
            sc = golden_scenario("clean")
            link = await self._open_link(clock, sc)
            rtt = link.round_trip_time()
            link.close()
            clock.close()
            await asyncio.sleep(0)
            return rtt, sc.round_trip_time

        rtt, expected = asyncio.run(scenario())
        assert rtt == pytest.approx(expected, rel=0.01)


# -- whole-session loopback ------------------------------------------------


class TestLoopbackSession:
    def test_clean_transfer_digest_and_invariants(self):
        result = run_transfer(golden_scenario("clean"), n_frames=12,
                              timeout=20.0)
        assert result.completed
        assert result.delivered_unique == 12
        assert result.digest == result.expected_digest
        assert result.monitors is not None and result.monitors.ok
        assert result.ok

    def test_lossy_transfer_recovers_every_payload(self):
        result = run_transfer(golden_scenario("lossy"), n_frames=12,
                              timeout=20.0)
        assert result.completed
        assert result.digest == result.expected_digest
        assert result.ok

    def test_datagram_drop_is_recovered(self):
        result = run_transfer(golden_scenario("clean"), n_frames=12,
                              timeout=20.0, drop=0.1, seed=5)
        assert result.completed
        assert result.digest == result.expected_digest
        assert result.ok


# -- payload helpers -------------------------------------------------------


class TestPayloadHelpers:
    def test_payload_roundtrip(self):
        payload = make_payload(42, 64)
        assert len(payload) == 64
        assert payload_index(payload) == 42

    def test_payload_index_rejects_garbage(self):
        assert payload_index(b"not indexed") is None
        assert payload_index(None) is None

    def test_digest_is_order_sensitive(self):
        a, b = make_payload(0), make_payload(1)
        assert payload_digest([a, b]) != payload_digest([b, a])

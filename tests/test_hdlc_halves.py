"""Direct unit tests of the HDLC sender/receiver halves via stub channels."""

from __future__ import annotations

import pytest

from repro.hdlc.config import HdlcConfig
from repro.hdlc.frames import HdlcIFrame, RejFrame, RrFrame, SrejFrame
from repro.hdlc.receiver import HdlcReceiver
from repro.hdlc.sender import HdlcSender
from repro.simulator.engine import Simulator


class StubChannel:
    """Captures sends and emulates serialization-complete idle events."""

    def __init__(self, sim=None, bit_rate: float = 100e6):
        self.sim = sim
        self.bit_rate = bit_rate
        self.sent: list = []
        self.idle_callbacks: list = []

    def send(self, frame):
        self.sent.append(frame)
        if self.sim is not None:
            self.sim.schedule(
                frame.size_bits / self.bit_rate,
                lambda: [cb() for cb in self.idle_callbacks],
            )

    def on_idle(self, callback):
        self.idle_callbacks.append(callback)

    @property
    def is_idle(self):
        return True

    def transmission_time(self, frame):
        return frame.size_bits / self.bit_rate

    def propagation_delay(self, when):
        return 0.01

    def drain(self):
        out, self.sent = self.sent, []
        return out


def _config(**overrides):
    base = dict(window_size=4, sequence_bits=3, timeout=0.05)
    base.update(overrides)
    return HdlcConfig(**base)


def make_sender(sim, **overrides):
    channel = StubChannel(sim)
    return HdlcSender(sim, _config(**overrides), data_channel=channel), channel


def make_receiver(sim, **overrides):
    config = _config(**overrides)
    channel = StubChannel(sim)
    delivered = []
    receiver = HdlcReceiver(
        sim, config, control_channel=channel, deliver=delivered.append
    )
    return receiver, channel, delivered


def iframe(ns, poll=False, payload=None):
    return HdlcIFrame(ns=ns, payload=payload if payload is not None else ns,
                      size_bits=8272, poll=poll)


class TestHdlcSenderHalf:
    def test_window_limits_outstanding(self):
        sim = Simulator()
        sender, channel = make_sender(sim)
        sender.start()
        for i in range(10):
            sender.accept(("pkt", i))
        sim.run(until=0.01)
        sent = [f for f in channel.drain() if isinstance(f, HdlcIFrame)]
        assert len(sent) == 4  # window size
        assert [f.ns for f in sent] == [0, 1, 2, 3]

    def test_last_frame_of_window_polls(self):
        sim = Simulator()
        sender, channel = make_sender(sim)
        # Queue the whole batch before starting so the poll decision
        # sees the real backlog at each send.
        for i in range(10):
            sender.accept(("pkt", i))
        sender.start()
        sim.run(until=0.01)
        sent = channel.drain()
        assert [f.poll for f in sent] == [False, False, False, True]

    def test_rr_slides_window_and_releases(self):
        sim = Simulator()
        sender, channel = make_sender(sim)
        sender.start()
        for i in range(6):
            sender.accept(("pkt", i))
        sim.run(until=0.01)
        channel.drain()
        sender.on_rr(RrFrame(nr=4, final=True), corrupted=False)
        sim.run(until=0.02)
        assert sender.releases == 4
        more = [f for f in channel.drain() if isinstance(f, HdlcIFrame)]
        assert [f.ns for f in more] == [4, 5]

    def test_srej_retransmits_listed_frames(self):
        sim = Simulator()
        sender, channel = make_sender(sim)
        sender.start()
        for i in range(4):
            sender.accept(("pkt", i))
        sim.run(until=0.01)
        channel.drain()
        sender.on_srej(SrejFrame(nrs=(1, 2), final=True), corrupted=False)
        sim.run(until=0.02)
        resent = [f for f in channel.drain() if isinstance(f, HdlcIFrame)]
        assert [f.ns for f in resent] == [1, 2]
        assert sender.retransmissions == 2

    def test_repeated_srej_retransmits_again(self):
        """A second SREJ for the same N(S) after the retransmission went
        out is a legitimate re-request (the re-sent copy was lost too)
        and must trigger another copy."""
        sim = Simulator()
        sender, channel = make_sender(sim)
        sender.start()
        sender.accept(("pkt", 0))
        sim.run(until=0.01)
        channel.drain()
        sender.on_srej(SrejFrame(nrs=(0,)), corrupted=False)
        sim.run(until=0.02)
        first = [f for f in channel.drain() if isinstance(f, HdlcIFrame)]
        assert len(first) == 1
        sender.on_srej(SrejFrame(nrs=(0,)), corrupted=False)
        sim.run(until=0.03)
        second = [f for f in channel.drain() if isinstance(f, HdlcIFrame)]
        assert len(second) == 1
        assert sender.retransmissions == 2

    def test_poll_timeout_retransmits_oldest(self):
        sim = Simulator()
        sender, channel = make_sender(sim)
        sender.start()
        for i in range(2):
            sender.accept(("pkt", i))
        sim.run(until=0.3)  # several timeouts, no responses
        assert sender.timeouts >= 1
        frames = [f for f in channel.drain() if isinstance(f, HdlcIFrame)]
        # Oldest unacked frame (ns=0) re-sent with poll.
        retries = [f for f in frames if f.ns == 0]
        assert len(retries) >= 2
        assert any(f.poll for f in retries[1:])

    def test_rej_goes_back(self):
        sim = Simulator()
        sender, channel = make_sender(sim, selective=False)
        sender.start()
        for i in range(4):
            sender.accept(("pkt", i))
        sim.run(until=0.01)
        channel.drain()
        sender.on_rej(RejFrame(nr=1, final=True), corrupted=False)
        sim.run(until=0.02)
        resent = [f.ns for f in channel.drain() if isinstance(f, HdlcIFrame)]
        assert resent == [1, 2, 3]  # everything from N(R), in order
        assert sender.releases == 1  # frame 0 cumulatively acked

    def test_corrupted_responses_ignored(self):
        sim = Simulator()
        sender, channel = make_sender(sim)
        sender.start()
        sender.accept(("pkt", 0))
        sim.run(until=0.01)
        sender.on_rr(RrFrame(nr=1), corrupted=True)
        sender.on_srej(SrejFrame(nrs=(0,)), corrupted=True)
        assert sender.releases == 0
        assert sender.retransmissions == 0


class TestHdlcReceiverHalf:
    def test_in_order_frames_delivered_and_acked_per_window(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        for ns in range(4):
            receiver.on_iframe(iframe(ns), corrupted=False)
        assert delivered == [0, 1, 2, 3]
        rrs = [f for f in channel.drain() if isinstance(f, RrFrame)]
        assert len(rrs) == 1 and rrs[0].nr == 4 % 8

    def test_gap_triggers_srej_with_missing_list(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.on_iframe(iframe(0), corrupted=False)
        receiver.on_iframe(iframe(3), corrupted=False)  # 1, 2 missing
        srejs = [f for f in channel.drain() if isinstance(f, SrejFrame)]
        assert len(srejs) == 1
        assert set(srejs[0].nrs) == {1, 2}

    def test_no_repeat_srej_for_same_gap(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim, window_size=4)
        receiver.on_iframe(iframe(0), corrupted=False)
        receiver.on_iframe(iframe(2), corrupted=False)
        receiver.on_iframe(iframe(3), corrupted=False)
        srejs = [f for f in channel.drain() if isinstance(f, SrejFrame)]
        listed = [ns for f in srejs for ns in f.nrs]
        assert listed.count(1) == 1  # gap 1 rejected exactly once

    def test_poll_with_gaps_answers_final_srej(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.on_iframe(iframe(0), corrupted=False)
        receiver.on_iframe(iframe(2, poll=True), corrupted=False)
        responses = channel.drain()
        finals = [f for f in responses if getattr(f, "final", False)]
        assert len(finals) == 1 and isinstance(finals[0], SrejFrame)
        assert 1 in finals[0].nrs

    def test_poll_without_gaps_answers_final_rr(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.on_iframe(iframe(0, poll=True), corrupted=False)
        responses = channel.drain()
        finals = [f for f in responses if getattr(f, "final", False)]
        assert len(finals) == 1 and isinstance(finals[0], RrFrame)
        assert finals[0].nr == 1

    def test_out_of_order_held_and_released_in_order(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.on_iframe(iframe(1), corrupted=False)
        receiver.on_iframe(iframe(2), corrupted=False)
        assert delivered == []
        assert receiver.hold_buffer_count == 2
        receiver.on_iframe(iframe(0), corrupted=False)
        assert delivered == [0, 1, 2]
        assert receiver.hold_buffer_count == 0

    def test_duplicate_discarded(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim)
        receiver.on_iframe(iframe(0), corrupted=False)
        receiver.on_iframe(iframe(0), corrupted=False)
        assert delivered == [0]
        assert receiver.duplicates == 1

    def test_gbn_discards_out_of_order_and_rejects_once(self):
        sim = Simulator()
        receiver, channel, delivered = make_receiver(sim, selective=False)
        receiver.on_iframe(iframe(0), corrupted=False)
        receiver.on_iframe(iframe(2), corrupted=False)
        receiver.on_iframe(iframe(3), corrupted=False)
        assert delivered == [0]
        assert receiver.discards == 2
        rejs = [f for f in channel.drain() if isinstance(f, RejFrame)]
        assert len(rejs) == 1 and rejs[0].nr == 1

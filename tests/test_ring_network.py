"""Ring-constellation integration: many flows over a LAMS ring.

A realistic LAMS topology is a ring of satellites in one orbital plane
(each linked to its neighbours).  This test wires a full ring with
LAMS-DLC on every link, BFS shortest-path routing, and several
simultaneous flows — exercising the store-and-forward substrate, the
per-source resequencers, and routing around both sides of the ring.
"""

from __future__ import annotations

import pytest

from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.netlayer import (
    DatagramService,
    DeliveryLog,
    ForwardingNetworkLayer,
    shortest_path_routes,
)
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    Node,
    Simulator,
    StreamRegistry,
)


def build_ring(sim, size=6, iframe_ber=1e-6, seed=31):
    """A ring n0—n1—…—n(size-1)—n0 with LAMS-DLC on every link."""
    names = [f"n{i}" for i in range(size)]
    topology: dict[str, dict[str, str]] = {name: {} for name in names}
    for i in range(size):
        j = (i + 1) % size
        link_name = f"l{i}"
        topology[names[i]][names[j]] = link_name
        topology[names[j]][names[i]] = link_name

    logs = {name: DeliveryLog(sim) for name in names}
    nodes, layers = {}, {}
    for name in names:
        layer = ForwardingNetworkLayer(
            sim, address=name,
            routes=shortest_path_routes(topology, name),
            deliver=logs[name],
        )
        node = Node(sim, name, network_layer=layer)
        layer.bind(node)
        nodes[name], layers[name] = node, layer

    config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
    for i in range(size):
        j = (i + 1) % size
        link = FullDuplexLink(
            sim, bit_rate=100e6, propagation_delay=0.008, name=f"l{i}",
            iframe_errors=BernoulliChannel(iframe_ber),
            cframe_errors=BernoulliChannel(iframe_ber / 100),
            streams=StreamRegistry(seed=seed + i),
        )
        left, right = names[i], names[j]
        a, b = lams_dlc_pair(
            sim, link, config,
            deliver_a=lambda pkt, ln=f"l{i}", nd=left: nodes[nd].deliver_up(pkt, ln),
            deliver_b=lambda pkt, ln=f"l{i}", nd=right: nodes[nd].deliver_up(pkt, ln),
        )
        a.start()
        b.start()
        nodes[left].attach_endpoint(f"l{i}", a)
        nodes[right].attach_endpoint(f"l{i}", b)

    services = {name: DatagramService(sim, layers[name]) for name in names}
    return names, nodes, layers, services, logs


class TestRingNetwork:
    def test_all_pairs_one_datagram(self):
        """Every node sends one datagram to every other node."""
        sim = Simulator()
        names, nodes, layers, services, logs = build_ring(sim, size=6)
        for src in names:
            for dst in names:
                if src != dst:
                    services[src].send(dst, data=f"{src}->{dst}")
        sim.run(until=10.0)
        for dst in names:
            received = {(dg.source, dg.data) for dg in logs[dst].datagrams}
            expected = {
                (src, f"{src}->{dst}") for src in names if src != dst
            }
            assert received == expected, dst

    def test_crossing_flows_exactly_once_in_order(self):
        sim = Simulator()
        names, nodes, layers, services, logs = build_ring(sim, size=6, iframe_ber=5e-6)
        n = 200
        flows = [("n0", "n3"), ("n2", "n5"), ("n4", "n1")]
        for src, dst in flows:
            for i in range(n):
                services[src].send(dst, data=i)
        sim.run(until=30.0)
        for src, dst in flows:
            assert logs[dst].exactly_once(src, n), (src, dst)
            assert logs[dst].in_order(src), (src, dst)

    def test_shortest_path_used(self):
        """n0 → n2 goes the short way (2 hops), never the long way."""
        sim = Simulator()
        names, nodes, layers, services, logs = build_ring(sim, size=6, iframe_ber=0.0)
        for i in range(20):
            services["n0"].send("n2", data=i)
        sim.run(until=5.0)
        assert len(logs["n2"]) == 20
        # The long path would traverse n5, n4, n3; their layers must not
        # have forwarded anything.
        for idle in ("n5", "n4", "n3"):
            assert layers[idle].forwarded == 0
        # n1 carried the transit traffic.
        assert layers["n1"].forwarded == 20

    def test_antipodal_traffic_splits_by_destination(self):
        """Datagrams to the antipode take a consistent 3-hop route and
        the end-to-end delay reflects three propagation hops."""
        sim = Simulator()
        names, nodes, layers, services, logs = build_ring(sim, size=6, iframe_ber=0.0)
        for i in range(50):
            services["n0"].send("n3", data=i)
        sim.run(until=10.0)
        assert logs["n3"].exactly_once("n0", 50)
        # 3 hops x (8 ms propagation + checkpoint wait): well over 24 ms.
        assert logs["n3"].mean_delay() > 0.024

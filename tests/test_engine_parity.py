"""Differential harness for the engine backends and the batched path.

Three oracles, each asserting bit-identity where the design promises it:

1. **pure vs compiled** — the C dispatch loop (``_speedups.run_loop``)
   against the Python loop, on golden end-to-end scenarios: identical
   tracer summaries, delivered payloads, and event counts.  Skipped
   (loudly, not silently green) when the extension is not built.
2. **heap vs timer wheel** — the calendar-queue scheduler against the
   single heap: the merged dispatch must preserve the global
   ``(time, sequence)`` order exactly, so runs are identical.
3. **batched vs scalar sends** — ``batch_window`` pre-draws window
   verdicts through ``draw_window``; with the link up and no
   retransmissions the pre-drawn run must equal the scalar run draw
   for draw.  (Under mid-burst outages the batched path re-scalarizes
   the tail — outcomes may legitimately differ there, so that case is
   held to protocol invariants instead: every payload delivered
   exactly once, in order.)
"""

from __future__ import annotations

import hashlib

import pytest

from repro.faults.plan import FaultPlan, LinkOutage
from repro.simulator import engine
from repro.simulator.engine import (
    COMPILED_AVAILABLE,
    SimulationError,
    Simulator,
    TimerWheel,
    engine_backend,
    use_backend,
)
from repro.workloads.generators import FiniteBatch, SaturatedSource
from repro.workloads.scenarios import PRESETS, build_simulation

needs_compiled = pytest.mark.skipif(
    not COMPILED_AVAILABLE,
    reason="compiled engine core not built (python setup.py build_ext --inplace)",
)


def _fingerprint(setup) -> tuple:
    """Everything a run's outcome is judged by, hashable for equality."""
    delivered = list(setup.delivered)
    digest = hashlib.sha256(repr(delivered).encode()).hexdigest()
    return (
        setup.sim.event_count,
        setup.sim.now,
        len(delivered),
        digest,
        setup.tracer.summary(),
    )


def _run_golden(preset_name: str, *, seed: int = 3, until: float = 5.0,
                count: int = 400, overrides: dict | None = None,
                saturated: bool = False):
    setup = build_simulation(PRESETS[preset_name], "lams", seed=seed,
                             overrides=overrides)
    if saturated:
        sender = setup.endpoint_a.sender
        SaturatedSource(
            setup.sim, setup.endpoint_a,
            backlog_fn=lambda: sender.pending_count,
        ).start()
    else:
        FiniteBatch(setup.sim, setup.endpoint_a, count=count).start()
    setup.sim.run(until=until)
    return _fingerprint(setup)


# -- 1. pure vs compiled ---------------------------------------------------


class TestCompiledBackendParity:
    @needs_compiled
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    def test_golden_scenarios_identical(self, preset_name):
        with use_backend("pure"):
            pure = _run_golden(preset_name)
        with use_backend("compiled"):
            compiled = _run_golden(preset_name)
        assert pure == compiled

    @needs_compiled
    def test_saturated_workload_identical(self):
        with use_backend("pure"):
            pure = _run_golden("nominal", until=0.2, saturated=True)
        with use_backend("compiled"):
            compiled = _run_golden("nominal", until=0.2, saturated=True)
        assert pure == compiled

    @needs_compiled
    def test_backend_selector_reports_override(self):
        with use_backend("pure"):
            assert engine_backend() == "pure"
        with use_backend("compiled"):
            assert engine_backend() == "compiled"

    @needs_compiled
    def test_run_semantics_identical(self):
        """until-clamp, stop(), integer times, and return values."""

        def drive(backend):
            with use_backend(backend):
                sim = Simulator()
                seen = []
                sim.schedule(1.0, seen.append, "a")
                # Integer absolute time exercises the comparison
                # fallback in the compiled heap (non-float entry).
                sim.schedule_at(2, seen.append, "b")
                sim.schedule(3.0, sim.stop)
                sim.schedule(4.0, seen.append, "never")
                first = sim.run(until=1.5)
                second = sim.run()
                return seen, first, second, sim.now, sim.event_count

        assert drive("pure") == drive("compiled")

    @needs_compiled
    def test_max_events_raises_identically(self):
        def drive(backend):
            with use_backend(backend):
                sim = Simulator()
                for index in range(10):
                    sim.schedule(index * 0.1, lambda: None)
                with pytest.raises(SimulationError) as excinfo:
                    sim.run(max_events=5)
                return str(excinfo.value), sim.event_count, sim.now

        assert drive("pure") == drive("compiled")

    @needs_compiled
    def test_callback_exception_propagates_identically(self):
        class Boom(Exception):
            pass

        def bang():
            raise Boom("bang")

        def drive(backend):
            with use_backend(backend):
                sim = Simulator()
                sim.schedule(0.5, lambda: None)
                sim.schedule(1.0, bang)
                sim.schedule(1.5, lambda: None)
                with pytest.raises(Boom):
                    sim.run()
                return sim.event_count, sim.now, len(sim._heap)

        assert drive("pure") == drive("compiled")

    @needs_compiled
    def test_timer_churn_identical(self):
        """Stale-generation expiries and heap compaction on both loops."""

        def drive(backend):
            with use_backend(backend):
                sim = Simulator()
                fired = []
                timers = [sim.timer(lambda i=i: fired.append(i))
                          for i in range(64)]

                def churn():
                    for timer in timers:
                        timer.restart(0.5)  # orphan the previous expiry

                for round_index in range(8):
                    sim.schedule(round_index * 0.1, churn)
                sim.run()
                return fired, sim.now, sim.event_count

        assert drive("pure") == drive("compiled")


# -- 2. heap vs timer wheel ------------------------------------------------


class TestTimerWheelParity:
    @pytest.mark.parametrize("preset_name", ["nominal", "noisy"])
    def test_golden_scenarios_identical(self, preset_name, monkeypatch):
        plain = _run_golden(preset_name)
        monkeypatch.setattr(engine, "_DEFAULT_WHEEL_WIDTH", 0.001)
        wheeled = _run_golden(preset_name)
        assert plain == wheeled

    def test_wheel_orders_globally(self):
        import random

        wheel = TimerWheel(0.01)
        rnd = random.Random(42)
        entries = [(rnd.random(), seq, None, ()) for seq in range(500)]
        for entry in entries:
            wheel.push(entry)
        assert len(wheel) == 500
        drained = [wheel.pop() for _ in range(500)]
        assert drained == sorted(entries)
        assert len(wheel) == 0
        with pytest.raises(IndexError):
            wheel.pop()

    def test_wheel_timer_cancel_and_compact(self):
        sim = Simulator(timer_wheel_width=0.005)
        fired = []
        timers = [sim.timer(lambda i=i: fired.append(i)) for i in range(100)]
        for timer in timers:
            timer.start(0.5)
        for timer in timers[:90]:
            timer.cancel()  # drives _note_stale_timer past the compact floor
        sim.run()
        assert fired == list(range(90, 100))
        assert sim.now == 0.5


# -- 3. batched vs scalar sends -------------------------------------------


def _assert_equivalent(scalar: tuple, batched: tuple) -> None:
    """Batched-vs-scalar equality, modulo the two documented deltas.

    Event counts legitimately differ (k delivery events + one completion
    instead of 2k scalar events).  Time-weighted summary means may
    differ in the last float bit — one level-neutral update at window
    commit integrates the same area as k per-frame updates, but in a
    different summation order — so summary floats compare at 1e-9
    relative.  Everything else, including the delivered-payload digest,
    is exact.
    """
    scalar_count, scalar_now, scalar_n, scalar_digest, scalar_summary = scalar
    batched_count, batched_now, batched_n, batched_digest, batched_summary = batched
    assert scalar_now == batched_now
    assert scalar_n == batched_n
    assert scalar_digest == batched_digest
    assert scalar_summary.keys() == batched_summary.keys()
    for key, value in scalar_summary.items():
        other = batched_summary[key]
        if isinstance(value, float):
            assert other == pytest.approx(value, rel=1e-9), key
        else:
            assert other == value, key


class TestBatchedSendParity:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    def test_batched_equals_scalar(self, preset_name):
        scalar = _run_golden(preset_name, overrides={"batch_window": 0})
        batched = _run_golden(preset_name, overrides={"batch_window": 64})
        _assert_equivalent(scalar, batched)

    def test_deep_backlog_delivers_exactly_once(self):
        """Sustained line-rate backlog: the bounded-divergence regime.

        Once the backlog outlasts the round-trip time, NAK-triggered
        retransmissions arrive while a burst is in flight and must wait
        for the window to complete (scalar: only for the current frame)
        — the documented timing divergence of the batched path.  Run
        outcomes may then legitimately differ in delivery *timing*, so
        this asserts the invariant that survives it: the same payload
        set arrives, exactly once.  (Bit-identity under identical
        offered traffic is covered by the golden presets above, whose
        backlogs drain within an RTT.)
        """
        scalar = _run_golden("nominal", until=1.0, count=3000,
                             overrides={"batch_window": 0})
        batched = _run_golden("nominal", until=1.0, count=3000,
                              overrides={"batch_window": 64})
        assert scalar[2] == batched[2] == 3000

    def test_batched_saturated_source_delivers_exactly_once(self):
        """Feedback-coupled workload: SaturatedSource polls protocol
        state, so its offered traffic legitimately shifts when batching
        changes the drain pattern; delivery must stay exactly-once."""
        setup = build_simulation(PRESETS["nominal"], "lams", seed=3,
                                 overrides={"batch_window": 64})
        sender = setup.endpoint_a.sender
        SaturatedSource(
            setup.sim, setup.endpoint_a,
            backlog_fn=lambda: sender.pending_count,
        ).start()
        setup.sim.run(until=0.2)
        indexes = [payload[1] for payload in setup.delivered]
        assert len(indexes) > 1000
        assert len(indexes) == len(set(indexes))

    def test_mid_burst_outage_keeps_protocol_invariants(self):
        """Outages re-scalarize in-flight bursts; delivery must survive.

        The requeued tail draws fresh verdicts (documented divergence),
        so this asserts protocol correctness rather than bit-identity:
        every offered payload arrives exactly once.  (Delivery order
        across an outage is not asserted — enforced-recovery
        renumbering reorders identically with batching disabled.)
        """
        plan = FaultPlan(faults=(
            LinkOutage(start=0.002, duration=0.004),
            LinkOutage(start=0.010, duration=0.002),
        ))
        setup = build_simulation(
            PRESETS["short_hop"], "lams", seed=11,
            overrides={"batch_window": 32}, fault_plan=plan,
        )
        batch = FiniteBatch(setup.sim, setup.endpoint_a, count=300)
        batch.start()
        setup.sim.run(until=5.0)
        delivered = list(setup.delivered)
        assert len(delivered) == batch.offered == 300
        indexes = sorted(payload[1] for payload in delivered)
        assert indexes == list(range(300))

"""Tests for the closed-form Section-4 model: formula fidelity and shape."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import bounds, compare
from repro.analysis import hdlc as hdlc_model
from repro.analysis import lams as lams_model
from repro.analysis.errorprobs import (
    frame_error_probability,
    geometric_period_pmf,
    mean_checkpoints_needed,
    mean_transmissions,
    retransmission_probability_lams,
    retransmission_probability_piggyback,
    retransmission_probability_posack,
)
from repro.analysis.params import ModelParameters


def make_params(**overrides) -> ModelParameters:
    base = dict(
        round_trip_time=0.0334,
        iframe_time=2.757e-5,
        cframe_time=3.2e-7,
        processing_time=1e-5,
        p_f=0.008,
        p_c=1e-6,
        checkpoint_interval=0.005,
        cumulation_depth=3,
        window_size=64,
        alpha=0.05,
    )
    base.update(overrides)
    return ModelParameters(**base)


class TestErrorProbs:
    def test_lams_pr_is_pf(self):
        assert retransmission_probability_lams(0.01) == 0.01

    def test_posack_formula(self):
        assert retransmission_probability_posack(0.01, 0.02) == pytest.approx(
            0.01 + 0.02 - 0.01 * 0.02
        )

    def test_piggyback_equals_posack_with_equal_probs(self):
        p = 0.013
        assert retransmission_probability_piggyback(p) == pytest.approx(
            retransmission_probability_posack(p, p)
        )

    def test_mean_transmissions_geometric(self):
        assert mean_transmissions(0.0) == 1.0
        assert mean_transmissions(0.5) == 2.0

    def test_pmf_sums_to_one(self):
        p_r = 0.3
        total = sum(geometric_period_pmf(p_r, k) for k in range(1, 200))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_pmf_mean_matches_s_bar(self):
        p_r = 0.2
        mean = sum(k * geometric_period_pmf(p_r, k) for k in range(1, 500))
        assert mean == pytest.approx(mean_transmissions(p_r), rel=1e-9)

    def test_mean_checkpoints(self):
        assert mean_checkpoints_needed(0.0) == 1.0
        assert mean_checkpoints_needed(0.5) == 2.0

    @given(st.floats(min_value=0.0, max_value=0.99), st.floats(min_value=0.0, max_value=0.99))
    def test_posack_never_below_either_input(self, p_f, p_c):
        p_r = retransmission_probability_posack(p_f, p_c)
        assert p_r >= p_f - 1e-15 and p_r >= p_c - 1e-15
        assert p_r <= 1.0

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            mean_transmissions(1.0)
        with pytest.raises(ValueError):
            retransmission_probability_lams(1.5)
        with pytest.raises(ValueError):
            geometric_period_pmf(0.5, 0)


class TestModelParameters:
    def test_from_link_derivations(self):
        params = ModelParameters.from_link(
            bit_rate=300e6, distance_km=5000, iframe_bits=8272, cframe_bits=96,
            iframe_ber=1e-6, cframe_ber=1e-8,
        )
        assert params.round_trip_time == pytest.approx(2 * 5000 / 299792.458)
        assert params.iframe_time == pytest.approx(8272 / 300e6)
        assert params.p_f == pytest.approx(frame_error_probability(1e-6, 8272))
        assert params.p_c == pytest.approx(frame_error_probability(1e-8, 96))

    def test_timeout_property(self):
        params = make_params(alpha=0.07)
        assert params.timeout == pytest.approx(params.round_trip_time + 0.07)

    def test_with_replaces(self):
        params = make_params()
        changed = params.with_(p_f=0.1)
        assert changed.p_f == 0.1 and params.p_f == 0.008

    def test_validation(self):
        with pytest.raises(ValueError):
            make_params(iframe_time=0)
        with pytest.raises(ValueError):
            make_params(p_f=1.0)
        with pytest.raises(ValueError):
            make_params(cumulation_depth=0)


class TestLamsModel:
    def test_s_bar(self):
        params = make_params(p_f=0.01)
        assert lams_model.s_bar(params) == pytest.approx(1 / 0.99)

    def test_transmission_period_formula(self):
        """Exact transcription of D_trans^LAMS(N)."""
        params = make_params()
        n = 10
        n_cp = 1 / (1 - params.p_c)
        expected = (
            n * params.iframe_time
            + params.cframe_time
            + params.processing_time
            + params.round_trip_time
            + (n_cp - 0.5) * params.checkpoint_interval
        )
        assert lams_model.transmission_period(params, n) == pytest.approx(expected)

    def test_retransmission_period_is_single_frame_case(self):
        params = make_params()
        assert lams_model.retransmission_period(params) == pytest.approx(
            lams_model.transmission_period(params, 1)
        )

    def test_d_low_composition(self):
        params = make_params()
        sbar = lams_model.s_bar(params)
        expected = lams_model.transmission_period(params, 20) + (
            sbar - 1
        ) * lams_model.retransmission_period(params)
        assert lams_model.total_delivery_time_low(params, 20) == pytest.approx(expected)

    def test_d_low_approximation_close(self):
        params = make_params()
        exact = lams_model.total_delivery_time_low(params, 100)
        approx = lams_model.total_delivery_time_low(params, 100, approximate=True)
        assert approx == pytest.approx(exact, rel=0.01)

    def test_holding_time_solves_recursion(self):
        """H = (1-P_F) H_succ + P_F (H_succ + H) must hold exactly."""
        params = make_params(p_f=0.05)
        h_frame = lams_model.holding_time(params)
        h_succ = h_frame * (1 - params.p_f)
        assert h_frame == pytest.approx((1 - params.p_f) * h_succ + params.p_f * (h_succ + h_frame))

    def test_buffer_size_formula(self):
        params = make_params()
        expected = (
            lams_model.holding_time(params) / params.iframe_time
            + params.processing_time / params.iframe_time
        )
        assert lams_model.transparent_buffer_size(params) == pytest.approx(expected)

    def test_buffer_grows_with_rtt(self):
        small = lams_model.transparent_buffer_size(make_params(round_trip_time=0.02))
        large = lams_model.transparent_buffer_size(make_params(round_trip_time=0.08))
        assert large > small

    def test_n_total_closed_form(self):
        params = make_params(p_f=0.1)
        assert lams_model.n_total(params, 100) == pytest.approx(100 / 0.9)

    def test_recursion_converges_to_closed_form(self):
        params = make_params(p_f=0.05)
        for n in (10, 1000, 50_000):
            recursive = lams_model.n_total(params, n, recursive=True)
            closed = lams_model.n_total(params, n)
            assert recursive == pytest.approx(closed, rel=1e-6)

    def test_recursion_schedule_conserves_frames(self):
        params = make_params(p_f=0.08)
        schedule = lams_model.subperiod_schedule(params, 5000)
        assert sum(schedule.new_frames) == pytest.approx(5000)
        # Loads are non-negative and eventually drain.
        assert all(load >= 0 for load in schedule.retransmission_load)

    def test_efficiency_increases_with_n(self):
        params = make_params()
        etas = [
            lams_model.throughput_efficiency(params, n)
            for n in (100, 1000, 10_000, 100_000)
        ]
        assert etas == sorted(etas)
        assert etas[-1] < 1.0

    def test_efficiency_decreases_with_error_rate(self):
        low = lams_model.throughput_efficiency(make_params(p_f=0.001), 50_000)
        high = lams_model.throughput_efficiency(make_params(p_f=0.1), 50_000)
        assert low > high


class TestHdlcModel:
    def test_s_bar(self):
        params = make_params(p_f=0.01, p_c=0.02)
        p_r = 0.01 + 0.02 - 0.0002
        assert hdlc_model.s_bar(params) == pytest.approx(1 / (1 - p_r))

    def test_transmission_delay_formula(self):
        params = make_params()
        expected = params.p_c * params.timeout + (1 - params.p_c) * (
            params.round_trip_time + 2 * params.processing_time + params.cframe_time
        )
        assert hdlc_model.transmission_delay(params) == pytest.approx(expected)

    def test_retransmission_period_variants_differ(self):
        params = make_params(p_f=0.05, p_c=0.01, alpha=0.1)
        derived = hdlc_model.retransmission_period(params, "derived")
        paper = hdlc_model.retransmission_period(params, "paper")
        assert derived != pytest.approx(paper)

    def test_derived_variant_weights_alpha_by_failure_probability(self):
        """Sanity: with p_f -> 0 and p_c -> 0 the alpha term vanishes in
        the derived variant (every period resolves immediately)."""
        params = make_params(p_f=1e-12, p_c=1e-12, alpha=0.5)
        derived = hdlc_model.retransmission_period(params, "derived")
        no_alpha = params.iframe_time + params.round_trip_time + (
            2 * params.processing_time + params.cframe_time
        )
        assert derived == pytest.approx(no_alpha, rel=1e-6)

    def test_paper_variant_keeps_alpha_at_low_error(self):
        """The printed algebra retains the full alpha even as errors
        vanish — the inconsistency we document in EXPERIMENTS.md."""
        params = make_params(p_f=1e-12, p_c=1e-12, alpha=0.5)
        paper = hdlc_model.retransmission_period(params, "paper")
        assert paper == pytest.approx(
            params.iframe_time + params.round_trip_time + 0.5, rel=1e-6
        )

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            hdlc_model.retransmission_period(make_params(), "bogus")

    def test_d_high_window_decomposition(self):
        params = make_params()
        w = params.window_size
        n = 5 * w
        expected = 5 * hdlc_model.total_delivery_time_low(
            params, hdlc_model.n_total_window(params)
        )
        assert hdlc_model.total_delivery_time_high(params, n) == pytest.approx(expected)

    def test_remainder_window_included(self):
        params = make_params()
        with_remainder = hdlc_model.total_delivery_time_high(params, params.window_size + 5)
        full_only = hdlc_model.total_delivery_time_high(params, params.window_size)
        assert with_remainder > full_only

    def test_efficiency_flat_in_n(self):
        """HDLC pays per window, so efficiency barely moves with N."""
        params = make_params()
        low = hdlc_model.throughput_efficiency(params, params.window_size * 10)
        high = hdlc_model.throughput_efficiency(params, params.window_size * 1000)
        assert high == pytest.approx(low, rel=0.10)

    def test_efficiency_improves_with_window(self):
        small = hdlc_model.throughput_efficiency(make_params(window_size=8), 50_000)
        large = hdlc_model.throughput_efficiency(make_params(window_size=64), 50_000)
        assert large > small

    def test_holding_time_at_least_response_time(self):
        params = make_params()
        assert hdlc_model.holding_time(params) > params.round_trip_time


class TestBounds:
    def test_lams_resolving_period(self):
        params = make_params()
        expected = (
            params.round_trip_time
            + 0.5 * params.checkpoint_interval
            + params.cumulation_depth * params.checkpoint_interval
        )
        assert bounds.lams_resolving_period(params) == pytest.approx(expected)

    def test_lams_numbering_requirement(self):
        params = make_params()
        required = bounds.lams_required_numbering_size(params)
        assert required == math.ceil(
            bounds.lams_resolving_period(params) / params.iframe_time
        )

    def test_hdlc_quantile_grows_without_bound(self):
        params = make_params(p_f=0.05, p_c=0.01)
        q = [0.9, 0.99, 0.999999, 0.999999999]
        sizes = [bounds.hdlc_required_numbering_size_quantile(params, x) for x in q]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_hdlc_quantile_error_free_is_minimal(self):
        params = make_params(p_f=0.0, p_c=0.0)
        t = bounds.hdlc_holding_time_quantile(params, 0.999)
        assert t == pytest.approx(params.round_trip_time)

    def test_inconsistency_gaps_ordering(self):
        """LAMS gap bound below the HDLC expectation for noisy links."""
        params = make_params(p_f=0.05, p_c=0.05, alpha=0.2)
        assert bounds.lams_inconsistency_gap(params) < bounds.hdlc_inconsistency_gap_expected(params)

    def test_gbn_discards(self):
        params = make_params()
        assert bounds.gbn_discards_per_error(params) == pytest.approx(
            params.round_trip_time / params.iframe_time
        )

    def test_link_frame_length(self):
        assert bounds.link_frame_length(0.02, 1e-4) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            bounds.link_frame_length(0.02, 0.0)


class TestCompare:
    def test_comparison_row_fields(self):
        params = make_params()
        row = compare.comparison_row(params, 10_000)
        assert row["winner"] in ("LAMS-DLC", "SR-HDLC")
        assert row["ratio"] == pytest.approx(row["eta_lams"] / row["eta_hdlc"])

    def test_lams_wins_at_high_traffic(self):
        params = make_params()
        assert compare.comparison_row(params, 100_000)["winner"] == "LAMS-DLC"

    def test_sweep_attaches_field(self):
        params = make_params()
        rows = compare.sweep(params, "p_f", [0.001, 0.01, 0.1], n_frames=10_000)
        assert [row["p_f"] for row in rows] == [0.001, 0.01, 0.1]

    def test_crossover_found_for_sign_change(self):
        """Efficiency ratio crosses 1 somewhere in N for typical params:
        at tiny N the HDLC window overhead matters less."""
        params = make_params(p_f=1e-4, p_c=1e-7, alpha=0.0)

        def make(n_scale: float) -> ModelParameters:
            return params

        # Instead sweep alpha: at alpha=0/low error the two can tie.
        def by_alpha(alpha: float) -> ModelParameters:
            return params.with_(alpha=alpha)

        ratio_low = compare.efficiency_ratio(by_alpha(0.0), 64)
        ratio_high = compare.efficiency_ratio(by_alpha(10.0), 64)
        if (ratio_low - 1.0) * (ratio_high - 1.0) < 0:
            crossing = compare.find_crossover(by_alpha, 0.0, 10.0, 64)
            assert crossing is not None
            assert compare.efficiency_ratio(by_alpha(crossing), 64) == pytest.approx(1.0, abs=1e-3)
        else:
            assert compare.find_crossover(by_alpha, 0.0, 10.0, 64) is None or True

    def test_crossover_none_when_same_sign(self):
        params = make_params()

        def by_pf(p_f: float) -> ModelParameters:
            return params.with_(p_f=p_f)

        # LAMS wins across this whole sweep at high N.
        assert compare.find_crossover(by_pf, 1e-4, 0.2, 100_000) is None

"""Tests for channel error models, including hypothesis properties."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.errormodel import (
    BernoulliChannel,
    GilbertElliottChannel,
    PerfectChannel,
    frame_error_probability,
)


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


class TestFrameErrorProbability:
    def test_zero_ber_is_zero(self):
        assert frame_error_probability(0.0, 10_000) == 0.0

    def test_zero_bits_is_zero(self):
        assert frame_error_probability(0.5, 0) == 0.0

    def test_certain_error(self):
        assert frame_error_probability(1.0, 1) == 1.0

    def test_matches_direct_formula(self):
        ber, bits = 1e-4, 1000
        expected = 1 - (1 - ber) ** bits
        assert frame_error_probability(ber, bits) == pytest.approx(expected, rel=1e-12)

    def test_accurate_for_tiny_ber(self):
        # Naive (1-p)^n loses precision here; expm1/log1p must not.
        p = frame_error_probability(1e-15, 1000)
        assert p == pytest.approx(1e-12, rel=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            frame_error_probability(-0.1, 10)
        with pytest.raises(ValueError):
            frame_error_probability(1.1, 10)
        with pytest.raises(ValueError):
            frame_error_probability(0.5, -1)

    @given(
        ber=st.floats(min_value=0.0, max_value=1.0),
        bits_a=st.integers(min_value=0, max_value=10_000),
        bits_b=st.integers(min_value=0, max_value=10_000),
    )
    def test_monotone_in_length(self, ber, bits_a, bits_b):
        """Longer frames are never less likely to be corrupted."""
        low, high = sorted((bits_a, bits_b))
        assert frame_error_probability(ber, low) <= frame_error_probability(ber, high) + 1e-15

    @given(
        ber_a=st.floats(min_value=0.0, max_value=1.0),
        ber_b=st.floats(min_value=0.0, max_value=1.0),
        bits=st.integers(min_value=1, max_value=10_000),
    )
    def test_monotone_in_ber(self, ber_a, ber_b, bits):
        low, high = sorted((ber_a, ber_b))
        assert frame_error_probability(low, bits) <= frame_error_probability(high, bits) + 1e-15

    @given(
        ber=st.floats(min_value=0.0, max_value=1.0),
        bits=st.integers(min_value=0, max_value=100_000),
    )
    def test_is_probability(self, ber, bits):
        p = frame_error_probability(ber, bits)
        assert 0.0 <= p <= 1.0


class TestPerfectChannel:
    def test_never_corrupts(self):
        channel = PerfectChannel()
        rng = _rng()
        assert not any(channel.frame_error(t, 10_000, rng) for t in range(100))


class TestBernoulliChannel:
    def test_invalid_ber_rejected(self):
        with pytest.raises(ValueError):
            BernoulliChannel(-0.1)
        with pytest.raises(ValueError):
            BernoulliChannel(1.5)

    def test_zero_ber_never_corrupts(self):
        channel = BernoulliChannel(0.0)
        rng = _rng()
        assert not any(channel.frame_error(float(t), 8000, rng) for t in range(1000))

    def test_empirical_rate_matches_theory(self):
        ber, bits, trials = 1e-4, 1000, 20_000
        channel = BernoulliChannel(ber)
        rng = _rng(42)
        errors = sum(channel.frame_error(float(t), bits, rng) for t in range(trials))
        expected = frame_error_probability(ber, bits)
        observed = errors / trials
        # 5-sigma binomial band.
        sigma = math.sqrt(expected * (1 - expected) / trials)
        assert abs(observed - expected) < 5 * sigma

    def test_deterministic_given_seed(self):
        a = [BernoulliChannel(0.01).frame_error(0.0, 100, _rng(7)) for _ in range(1)]
        b = [BernoulliChannel(0.01).frame_error(0.0, 100, _rng(7)) for _ in range(1)]
        assert a == b


class TestGilbertElliott:
    def make(self, **kwargs) -> GilbertElliottChannel:
        defaults = dict(
            good_ber=0.0, bad_ber=0.5, mean_good=0.1, mean_bad=0.01, bit_rate=1e6
        )
        defaults.update(kwargs)
        return GilbertElliottChannel(**defaults)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            self.make(good_ber=-1)
        with pytest.raises(ValueError):
            self.make(mean_good=0)
        with pytest.raises(ValueError):
            self.make(bit_rate=0)

    def test_steady_state_fraction(self):
        channel = self.make(mean_good=0.3, mean_bad=0.1)
        assert channel.steady_state_bad_fraction == pytest.approx(0.25)

    def test_zero_bits_never_errors(self):
        channel = self.make()
        assert not channel.frame_error(0.0, 0, _rng())

    def test_all_good_channel_clean(self):
        channel = self.make(good_ber=0.0, bad_ber=0.0)
        rng = _rng()
        assert not any(
            channel.frame_error(t * 0.001, 1000, rng) for t in range(1000)
        )

    def test_burstiness_clusters_errors(self):
        """Errors must cluster in time far above the i.i.d. expectation."""
        channel = self.make(good_ber=0.0, bad_ber=0.9, mean_good=0.5, mean_bad=0.02)
        rng = _rng(3)
        frame_time = 0.001
        outcomes = [
            channel.frame_error(i * frame_time, 1000, rng) for i in range(20_000)
        ]
        error_rate = sum(outcomes) / len(outcomes)
        assert 0.0 < error_rate < 0.5
        # Conditional probability of error given previous error should be
        # far higher than the marginal rate (the signature of bursts).
        pairs = sum(1 for i in range(1, len(outcomes)) if outcomes[i] and outcomes[i - 1])
        conditional = pairs / max(1, sum(outcomes[:-1]))
        assert conditional > 3 * error_rate

    def test_mean_error_rate_near_steady_state(self):
        channel = self.make(good_ber=0.0, bad_ber=1.0, mean_good=0.09, mean_bad=0.01)
        rng = _rng(11)
        frame_time = 1e-4  # short frames sample the state process
        outcomes = [
            channel.frame_error(i * frame_time, 100, rng) for i in range(50_000)
        ]
        observed = sum(outcomes) / len(outcomes)
        assert observed == pytest.approx(channel.steady_state_bad_fraction, abs=0.03)

"""The bulk-draw bit-identity oracle.

Every error model's optional ``draw_window(starts, sizes, rng)`` must
consume exactly the same RNG variates, in exactly the same order, as
``len(sizes)`` successive ``frame_error`` calls — that is the contract
that lets the batched frame path (``SimplexChannel.send_burst``)
pre-draw a window's corruption verdicts without changing a single
simulation outcome.  These tests enforce it for every model in the
error-model registry, by construction of the instances below:

- the verdicts must be equal element-for-element, and
- the RNG's *bit-generator state* afterwards must be identical — the
  strong form of "same variates in the same order", which catches a
  model that happens to produce the right booleans from a differently
  shaped draw.

Trace replay's frame mode has the dual invariant: it must never touch
the RNG at all, bulk or scalar.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.channels import (
    OrbitCoupledChannel,
    RecordingChannel,
    TraceReplayChannel,
)
from repro.simulator.errormodel import (
    BernoulliChannel,
    GilbertElliottChannel,
    PerfectChannel,
    available_error_models,
    scalar_draw_window,
)
from repro.transport.impair import UniformLossModel

# -- model factories -------------------------------------------------------
# One or more representative instances per registered model name.  Each
# factory builds a FRESH instance (models may carry draw buffers or
# trace cursors), so bulk and scalar sides start from identical state.

_TRACE_FRAMES = [
    {"t": i * 1e-4, "bits": 8272, "error": (i % 7 == 0)} for i in range(400)
]
_TRACE_BER = (
    [{"t": 0.0, "ber": 0.0}]
    + [{"t": 0.003, "ber": 2e-4}]
    + [{"t": 0.006, "ber": 0.0}]
    + [{"t": 0.009, "ber": 5e-5}]
)

MODEL_FACTORIES = {
    "perfect": [lambda: PerfectChannel()],
    "bernoulli": [
        lambda: BernoulliChannel(ber=1e-5),
        lambda: BernoulliChannel(ber=0.0),
        lambda: BernoulliChannel(ber=5e-4),
    ],
    "gilbert-elliott": [
        lambda: GilbertElliottChannel(
            good_ber=1e-7, bad_ber=1e-4, mean_good=0.02,
            mean_bad=0.004, bit_rate=3e8,
        ),
    ],
    "trace-replay": [
        lambda: TraceReplayChannel(records=list(_TRACE_FRAMES), mode="frame"),
        lambda: TraceReplayChannel(
            records=list(_TRACE_FRAMES), mode="frame", on_exhausted="loop"
        ),
        lambda: TraceReplayChannel(records=list(_TRACE_BER), mode="ber"),
    ],
    "orbit-coupled": [
        lambda: OrbitCoupledChannel(ber=1e-5, update_interval=0.002),
    ],
    "uniform-loss": [
        lambda: UniformLossModel(probability=0.05),
        lambda: UniformLossModel(probability=0.0),
    ],
}


def _windows():
    """(name, factory, starts, sizes) cases covering every registry model."""
    cases = []
    for name, factories in MODEL_FACTORIES.items():
        for index, factory in enumerate(factories):
            # Mixed frame sizes (I-frames + small control frames) over a
            # span long enough to cross trace breakpoints and orbit
            # buckets; also a degenerate single-frame window.
            starts = [i * 2.75e-5 for i in range(200)]
            sizes = [8272 if i % 3 else 96 for i in range(200)]
            cases.append(pytest.param(name, factory, starts, sizes,
                                      id=f"{name}-{index}"))
            cases.append(pytest.param(name, factory, [0.0], [8272],
                                      id=f"{name}-{index}-single"))
    return cases


def test_every_registered_model_is_covered():
    """A newly registered model must be added to MODEL_FACTORIES."""
    assert set(available_error_models()) == set(MODEL_FACTORIES)


@pytest.mark.parametrize("name, factory, starts, sizes", _windows())
def test_draw_window_matches_scalar_draws(name, factory, starts, sizes):
    bulk_model = factory()
    scalar_model = factory()
    bulk = getattr(bulk_model, "draw_window", None)
    assert bulk is not None, f"{name} lost its draw_window bulk API"

    rng_bulk = np.random.default_rng(1234)
    rng_scalar = np.random.default_rng(1234)
    verdicts_bulk = bulk(starts, sizes, rng_bulk)
    verdicts_scalar = scalar_draw_window(scalar_model, starts, sizes, rng_scalar)

    assert list(verdicts_bulk) == list(verdicts_scalar)
    assert all(isinstance(v, bool) for v in verdicts_bulk)
    assert rng_bulk.bit_generator.state == rng_scalar.bit_generator.state


@pytest.mark.parametrize("name, factory, starts, sizes", _windows())
def test_bulk_and_scalar_interleave_on_one_stream(name, factory, starts, sizes):
    """Alternating bulk windows and scalar draws stays on the same stream.

    This is the shape the sender actually produces: batched windows at
    line rate with scalar sends (retransmissions, queued frames)
    interleaved, all against one long-lived per-class RNG.
    """
    mixed_model = factory()
    scalar_model = factory()
    rng_mixed = np.random.default_rng(99)
    rng_scalar = np.random.default_rng(99)

    half = len(starts) // 2
    mixed = list(mixed_model.draw_window(starts[:half], sizes[:half], rng_mixed))
    for start, bits in zip(starts[half:], sizes[half:]):
        mixed.append(mixed_model.frame_error(start, bits, rng_mixed))
    reference = scalar_draw_window(scalar_model, starts, sizes, rng_scalar)

    assert mixed == list(reference)
    assert rng_mixed.bit_generator.state == rng_scalar.bit_generator.state


def test_trace_replay_frame_mode_never_draws():
    """Frame-mode replay is RNG-free in both the scalar and bulk paths."""
    model = TraceReplayChannel(records=list(_TRACE_FRAMES), mode="frame")
    rng = np.random.default_rng(7)
    before = rng.bit_generator.state
    bulk = model.draw_window([r["t"] for r in _TRACE_FRAMES[:100]],
                             [r["bits"] for r in _TRACE_FRAMES[:100]], rng)
    for record in _TRACE_FRAMES[100:150]:
        model.frame_error(record["t"], record["bits"], rng)
    assert rng.bit_generator.state == before
    assert list(bulk) == [bool(r["error"]) for r in _TRACE_FRAMES[:100]]


def test_recording_channel_bulk_records_and_delegates():
    """RecordingChannel's bulk path records per frame and stays identical."""
    inner_bulk = BernoulliChannel(ber=2e-4)
    inner_scalar = BernoulliChannel(ber=2e-4)
    recording = RecordingChannel(inner_bulk)
    reference = RecordingChannel(inner_scalar)
    starts = [i * 1e-4 for i in range(64)]
    sizes = [8272] * 64
    rng_a = np.random.default_rng(5)
    rng_b = np.random.default_rng(5)
    bulk = recording.draw_window(starts, sizes, rng_a)
    scalar = scalar_draw_window(reference, starts, sizes, rng_b)
    assert list(bulk) == list(scalar)
    assert rng_a.bit_generator.state == rng_b.bit_generator.state
    assert recording.records == reference.records
    assert len(recording.records) == 64


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    sizes=st.lists(st.sampled_from([96, 2048, 8272]), min_size=0, max_size=80),
    ber_exp=st.integers(min_value=3, max_value=8),
)
def test_bernoulli_property_bit_identity(seed, sizes, ber_exp):
    """Property form: any window shape, any seed, any BER magnitude.

    Bernoulli is the model with the trickiest bulk path (per-generator
    512-slot draw buffers shared between the scalar and bulk code), so
    it gets the randomized treatment on top of the fixed cases.
    """
    ber = 10.0 ** -ber_exp
    starts = [i * 3e-5 for i in range(len(sizes))]
    bulk_model = BernoulliChannel(ber=ber)
    scalar_model = BernoulliChannel(ber=ber)
    rng_bulk = np.random.default_rng(seed)
    rng_scalar = np.random.default_rng(seed)
    bulk = bulk_model.draw_window(starts, sizes, rng_bulk)
    scalar = scalar_draw_window(scalar_model, starts, sizes, rng_scalar)
    assert list(bulk) == list(scalar)
    assert rng_bulk.bit_generator.state == rng_scalar.bit_generator.state

"""Smoke tests for the example scripts.

Runs the faster examples end-to-end as subprocesses — the slower,
sweep-style examples are exercised indirectly through the experiment
registry they share code with.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "flow_control_demo.py",
    "multihop_store_and_forward.py",
    "adaptive_tuning.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_exactly_once():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert "delivered exactly once : True" in result.stdout


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        source = script.read_text()
        assert source.lstrip().startswith(('"""', "#!")), script.name
        assert '"""' in source, f"{script.name} lacks a docstring"

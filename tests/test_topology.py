"""Tests for the constellation topology layer.

Covers the declarative graph (shapes, validation, templates), the
LinkSpec resolution rules, the builder's determinism contract (same
master seed → bit-identical per-link summaries and rollups), and
per-link fault isolation (a fault plan on one link cannot shift another
link's RNG draws or accounting).
"""

from __future__ import annotations

import pytest

from repro.core import LamsDlcConfig
from repro.faults import FaultPlan
from repro.simulator import Satellite
from repro.topology import (
    EndpointSpec,
    FlowSpec,
    LinkSpec,
    NodeSpec,
    Topology,
    build_constellation,
    chain_topology,
    cross_traffic,
    grid_topology,
    ring_topology,
)

FAST = LinkSpec(scenario="short_hop")


def _run_ring(master_seed=7, size=4, fault_plans=None, until=0.2):
    """Build and run a small ring; returns (summaries, rollup)."""
    topo = ring_topology(size, FAST)
    if fault_plans:
        topo = topo.map_links(
            lambda spec: spec.with_(fault_plan=fault_plans.get(spec.name))
        )
    flows = cross_traffic(topo.node_names(), stride=1, messages=10,
                          interval=until / 40, poisson=True)
    constellation = build_constellation(
        topo, master_seed=master_seed, flows=flows, horizon=until,
        probe_interval=until / 10,
    )
    constellation.run(until=until)
    return constellation.link_summaries(), constellation.network_rollup()


class TestGraph:
    def test_ring_shape(self):
        topo = ring_topology(5, FAST)
        assert topo.node_names() == [f"n{i}" for i in range(5)]
        assert [link.name for link in topo.links] == [f"l{i}" for i in range(5)]
        assert topo.degree("n0") == 2
        assert topo.adjacency()["n0"] == {"n1": "l0", "n4": "l4"}

    def test_chain_shape(self):
        topo = chain_topology(3, FAST)
        assert len(topo.nodes) == 4 and len(topo.links) == 3
        assert topo.degree("n0") == 1 and topo.degree("n1") == 2

    def test_grid_shape(self):
        topo = grid_topology(3, 4, FAST)
        assert len(topo.nodes) == 12
        # 3 intra-plane rings of 4 + 3 wrapped cross-plane bundles of 4.
        assert len(topo.links) == 24
        assert topo.link("p0.l0").a == "p0s0" and topo.link("x0.l1").b == "p1s1"

    def test_grid_no_wrap_with_two_planes(self):
        topo = grid_topology(2, 3, FAST)
        # Wrapping two planes would duplicate the cross links.
        assert len(topo.links) == 2 * 3 + 3

    def test_satellite_ring_nodes_carry_orbits(self):
        topo = ring_topology(4, FAST, satellites=True, altitude_km=800.0)
        sats = [node.satellite for node in topo.nodes]
        assert all(isinstance(sat, Satellite) for sat in sats)
        assert len({sat.phase_deg for sat in sats}) == 4

    def test_rejects_duplicate_names_and_unknown_ends(self):
        with pytest.raises(ValueError, match="duplicate node"):
            Topology(nodes=("a", "a"), links=())
        with pytest.raises(ValueError, match="unknown node"):
            Topology(nodes=("a", "b"), links=(FAST.with_(a="a", b="zz"),))
        with pytest.raises(ValueError, match="duplicate link"):
            Topology(
                nodes=("a", "b", "c"),
                links=(FAST.with_(name="l", a="a", b="b"),
                       FAST.with_(name="l", a="b", b="c")),
            )

    def test_map_links_rewrites_every_spec(self):
        topo = ring_topology(3, FAST).map_links(lambda s: s.with_(seed=9))
        assert all(link.seed == 9 for link in topo.links)


class TestLinkSpec:
    def test_rejects_self_loop_and_double_error_spec(self):
        with pytest.raises(ValueError, match="itself"):
            LinkSpec(a="x", b="x")
        with pytest.raises(ValueError, match="not both"):
            LinkSpec(error_model="perfect", iframe_errors="perfect")

    def test_explicit_seed_wins_over_derivation(self):
        assert LinkSpec(seed=5).resolve_seed(123) == 5
        derived = LinkSpec(name="l9").resolve_seed(123)
        assert derived == LinkSpec(name="l9").resolve_seed(123)
        assert derived != LinkSpec(name="l8").resolve_seed(123)

    def test_config_resolution_order(self):
        explicit = LamsDlcConfig(checkpoint_interval=0.5)
        per_side = LamsDlcConfig(checkpoint_interval=0.25)
        spec = LinkSpec(config=explicit,
                        endpoint_b=EndpointSpec(config=per_side))
        assert spec.protocol_config("a") is explicit
        assert spec.protocol_config("b") is per_side
        derived = LinkSpec(scenario="short_hop",
                           overrides={"cumulation_depth": 7})
        assert derived.protocol_config("a").cumulation_depth == 7

    def test_other_end(self):
        spec = LinkSpec(a="x", b="y")
        assert spec.other("x") == "y" and spec.other("y") == "x"
        with pytest.raises(ValueError):
            spec.other("z")


class TestDeterminism:
    def test_same_master_seed_is_bit_identical(self):
        first_links, first_rollup = _run_ring(master_seed=7)
        second_links, second_rollup = _run_ring(master_seed=7)
        assert first_links == second_links
        assert first_rollup == second_rollup

    def test_different_master_seed_differs(self):
        _, first = _run_ring(master_seed=7)
        _, second = _run_ring(master_seed=8)
        assert first != second

    def test_probing_does_not_perturb_delivery(self):
        topo = ring_topology(4, FAST)
        flows = cross_traffic(topo.node_names(), stride=1, messages=10,
                              interval=0.005, poisson=True)

        def run(probe_interval):
            constellation = build_constellation(
                topo, master_seed=3, flows=flows, horizon=0.2,
                probe_interval=probe_interval,
            )
            constellation.run(until=0.2)
            rollup = constellation.network_rollup()
            # Probe-derived fields legitimately differ.
            for probed in ("peak_heap", "peak_buffered_max", "events"):
                rollup.pop(probed)
            return rollup

        assert run(None) == run(0.01)


class TestFaultIsolation:
    def test_fault_on_one_link_cannot_shift_another(self):
        plans = {"l2": FaultPlan.single_outage(0.05, 0.05)}
        baseline_links, _ = _run_ring(master_seed=7, fault_plans=None)
        faulted_links, _ = _run_ring(master_seed=7, fault_plans=plans)
        by_name = {summary["name"]: summary for summary in faulted_links}
        base_by_name = {summary["name"]: summary for summary in baseline_links}
        # The faulted link visibly changes...
        assert by_name["l2"] != base_by_name["l2"]
        assert by_name["l2"]["frames_lost_outage"] > 0
        # ...but a link no faulted traffic touches keeps identical
        # accounting: per-link stream isolation means l2's outage can
        # consume no draws from l0's registry.  (stride-1 ring flows:
        # each datagram crosses exactly one link.)
        assert by_name["l0"] == base_by_name["l0"]

    def test_declared_failure_reaches_the_node(self):
        topo = chain_topology(2, FAST.with_(
            fault_plan=None))
        # Outage long enough for LAMS to declare the link dead.
        topo = topo.map_links(
            lambda spec: spec.with_(
                fault_plan=FaultPlan.single_outage(0.02, 5.0)
            ) if spec.name == "l0" else spec
        )
        constellation = build_constellation(topo, master_seed=1)
        constellation.run(until=2.0)
        assert "l0" in constellation.layers["n0"].link_failures


class TestFlows:
    def test_cross_traffic_covers_every_node(self):
        flows = cross_traffic([f"n{i}" for i in range(6)], stride=2)
        assert len(flows) == 6
        assert {flow.source for flow in flows} == {f"n{i}" for i in range(6)}
        for flow in flows:
            assert flow.source != flow.destination

    def test_cross_traffic_rejects_self_stride(self):
        with pytest.raises(ValueError):
            cross_traffic(["a", "b"], stride=2)

    def test_flow_accounting(self):
        topo = chain_topology(1, FAST)
        constellation = build_constellation(
            topo,
            flows=[FlowSpec(source="n0", destination="n1", messages=25,
                            interval=0.001)],
            horizon=1.0,
        )
        constellation.run(until=1.0)
        assert constellation.datagrams_sent() == 25
        assert constellation.datagrams_delivered() == 25
        log = constellation.logs["n1"]
        assert log.in_order("n0") and log.exactly_once("n0", 25)
        assert constellation.end_to_end_delay().count == 25

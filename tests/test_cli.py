"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_run_requires_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "run"])

    def test_simulate_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "tcp"])


class TestCommands:
    def test_experiments_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_experiments_run_model_experiment(self, capsys):
        assert main(["experiments", "run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "s_bar_lams" in out

    def test_experiments_run_unknown_id(self):
        with pytest.raises(KeyError):
            main(["experiments", "run", "E99"])

    def test_model_command(self, capsys):
        assert main(["model", "--preset", "noisy", "--frames", "1000"]) == 0
        out = capsys.readouterr().out
        assert "s_bar LAMS" in out and "B_LAMS" in out

    def test_model_with_overrides(self, capsys):
        assert main([
            "model", "--preset", "nominal",
            "--iframe-ber", "1e-5", "--distance-km", "2000",
        ]) == 0
        assert "Section-4 model" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "--preset", "nominal", "--frames", "10000"]) == 0
        out = capsys.readouterr().out
        assert "LAMS-DLC" in out

    def test_simulate_batch(self, capsys):
        assert main([
            "simulate", "--preset", "short_hop", "--protocol", "lams",
            "--frames", "200", "--duration", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_simulate_saturated(self, capsys):
        assert main([
            "simulate", "--preset", "short_hop", "--protocol", "hdlc",
            "--saturated", "--duration", "0.3",
        ]) == 0
        assert "efficiency" in capsys.readouterr().out

    def test_orbit_command(self, capsys):
        assert main(["orbit", "--span", "3000", "--step", "10"]) == 0
        out = capsys.readouterr().out
        assert "alpha_min" in out and "visibility windows" in out


class TestConstellationCommand:
    def test_ring_run(self, capsys):
        assert main([
            "constellation", "--topology", "ring", "--size", "4",
            "--messages", "5", "--duration", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 LAMS-DLC links" in out
        assert "network rollup" in out
        assert "datagrams_delivered" in out

    def test_chain_run(self, capsys):
        assert main([
            "constellation", "--topology", "chain", "--size", "2",
            "--stride", "1", "--messages", "5", "--duration", "0.2",
        ]) == 0
        assert "2 LAMS-DLC links" in capsys.readouterr().out

    def test_rejects_bad_duration(self):
        assert main(["constellation", "--duration", "0"]) == 2

    def test_rejects_bad_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["constellation", "--topology", "star"])


class TestTuneCommand:
    def test_tune_prints_recommendation(self, capsys):
        assert main([
            "tune", "--bit-rate", "300e6", "--distance-km", "5000",
            "--mean-burst", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "cumulation_depth" in out and "payload_bits" in out

    def test_tune_requires_link_parameters(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune"])


class TestSoakBackendFlag:
    def test_backend_defaults_to_des(self):
        assert build_parser().parse_args(["soak"]).backend == "des"

    def test_backend_udp_accepted(self):
        args = build_parser().parse_args(["soak", "--backend", "udp"])
        assert args.backend == "udp"

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soak", "--backend", "tcp"])


class TestSharedParents:
    """The shared parent parsers give every runner the same core flags."""

    @pytest.mark.parametrize("command", [
        "simulate", "sweep", "soak", "constellation", "transmit", "serve",
    ])
    def test_seed_flag_everywhere(self, command):
        args = build_parser().parse_args([command, "--seed", "7"])
        assert args.seed == 7

    @pytest.mark.parametrize("command", ["sweep", "soak"])
    def test_pool_flags(self, command):
        args = build_parser().parse_args(
            [command, "--jobs", "3", "--chunksize", "2"])
        assert args.jobs == 3 and args.chunksize == 2

    @pytest.mark.parametrize("command", [
        "simulate", "sweep", "constellation", "transmit", "serve",
    ])
    def test_error_model_flag(self, command):
        args = build_parser().parse_args(
            [command, "--error-model", "gilbert-elliott"])
        assert args.error_model == "gilbert-elliott"

    @pytest.mark.parametrize("command", ["simulate", "sweep", "transmit"])
    def test_fault_plan_flag(self, command):
        args = build_parser().parse_args(
            [command, "--fault-plan", "plan.json"])
        assert args.fault_plan == "plan.json"

    def test_sweep_master_seed_is_deprecated_alias(self):
        args = build_parser().parse_args(["sweep"])
        assert args.master_seed is None  # unset -> --seed wins
        args = build_parser().parse_args(["sweep", "--master-seed", "9"])
        assert args.master_seed == 9

    def test_rejects_unknown_error_model(self, capsys):
        assert main(["simulate", "--error-model", "psychic",
                     "--duration", "0.1"]) == 2
        assert "unknown error model" in capsys.readouterr().err

    def test_rejects_bad_jobs(self, capsys):
        assert main(["sweep", "--jobs", "0"]) == 2


class TestTransportCommands:
    def test_transmit_defaults(self):
        args = build_parser().parse_args(["transmit"])
        assert args.frames == 48
        assert args.payload_bytes == 256
        assert args.golden is None
        assert args.connect is None
        assert not args.conform

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.bind == "127.0.0.1:47901"
        assert args.duration == 30.0

    def test_transmit_rejects_conform_with_connect(self, capsys):
        assert main(["transmit", "--conform", "--connect",
                     "127.0.0.1:1"]) == 2

    def test_transmit_rejects_nonpositive_frames(self, capsys):
        assert main(["transmit", "--frames", "0"]) == 2

    def test_transmit_loopback_clean(self, capsys):
        assert main(["transmit", "--golden", "clean", "--frames", "8"]) == 0
        out = capsys.readouterr().out
        assert "delivered 8/8" in out
        assert "digest match" in out
        assert "all invariants held" in out

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_run_requires_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "run"])

    def test_simulate_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "tcp"])


class TestCommands:
    def test_experiments_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_experiments_run_model_experiment(self, capsys):
        assert main(["experiments", "run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "s_bar_lams" in out

    def test_experiments_run_unknown_id(self):
        with pytest.raises(KeyError):
            main(["experiments", "run", "E99"])

    def test_model_command(self, capsys):
        assert main(["model", "--preset", "noisy", "--frames", "1000"]) == 0
        out = capsys.readouterr().out
        assert "s_bar LAMS" in out and "B_LAMS" in out

    def test_model_with_overrides(self, capsys):
        assert main([
            "model", "--preset", "nominal",
            "--iframe-ber", "1e-5", "--distance-km", "2000",
        ]) == 0
        assert "Section-4 model" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "--preset", "nominal", "--frames", "10000"]) == 0
        out = capsys.readouterr().out
        assert "LAMS-DLC" in out

    def test_simulate_batch(self, capsys):
        assert main([
            "simulate", "--preset", "short_hop", "--protocol", "lams",
            "--frames", "200", "--duration", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_simulate_saturated(self, capsys):
        assert main([
            "simulate", "--preset", "short_hop", "--protocol", "hdlc",
            "--saturated", "--duration", "0.3",
        ]) == 0
        assert "efficiency" in capsys.readouterr().out

    def test_orbit_command(self, capsys):
        assert main(["orbit", "--span", "3000", "--step", "10"]) == 0
        out = capsys.readouterr().out
        assert "alpha_min" in out and "visibility windows" in out


class TestConstellationCommand:
    def test_ring_run(self, capsys):
        assert main([
            "constellation", "--topology", "ring", "--size", "4",
            "--messages", "5", "--duration", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 LAMS-DLC links" in out
        assert "network rollup" in out
        assert "datagrams_delivered" in out

    def test_chain_run(self, capsys):
        assert main([
            "constellation", "--topology", "chain", "--size", "2",
            "--stride", "1", "--messages", "5", "--duration", "0.2",
        ]) == 0
        assert "2 LAMS-DLC links" in capsys.readouterr().out

    def test_rejects_bad_duration(self):
        assert main(["constellation", "--duration", "0"]) == 2

    def test_rejects_bad_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["constellation", "--topology", "star"])


class TestTuneCommand:
    def test_tune_prints_recommendation(self, capsys):
        assert main([
            "tune", "--bit-rate", "300e6", "--distance-km", "5000",
            "--mean-burst", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "cumulation_depth" in out and "payload_bits" in out

    def test_tune_requires_link_parameters(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune"])

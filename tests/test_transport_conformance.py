"""DES-vs-UDP conformance: the backend changes, the outcome doesn't.

Runs the golden scenarios through :func:`repro.transport.run_conformance`
and asserts the acceptance criterion of the transport backend: identical
delivered-payload digests and identical monitor verdicts on both
backends.  Kept small (24 frames) so the real-time UDP half stays well
under a second per scenario.
"""

from __future__ import annotations

import pytest

from repro.transport import GOLDEN_SCENARIOS, golden_scenario, run_conformance
from repro.transport.conformance import run_des_reference


class TestGoldenScenarios:
    def test_registry_names(self):
        assert set(GOLDEN_SCENARIOS) == {"clean", "lossy"}

    def test_lookup_rejects_unknown(self):
        with pytest.raises(KeyError):
            golden_scenario("nope")

    def test_scenarios_are_real_time_friendly(self):
        for scenario in GOLDEN_SCENARIOS.values():
            assert scenario.bit_rate <= 10e6
            assert scenario.checkpoint_interval <= 0.05


class TestDesReference:
    def test_clean_reference_completes_with_clean_monitors(self):
        report = run_des_reference(golden_scenario("clean"), n_frames=24)
        assert report.backend == "des"
        assert report.completed
        assert report.delivered_unique == 24
        assert report.monitors_ok
        assert report.violation_names == ()


class TestCrossBackend:
    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_backends_agree(self, name):
        (report,) = run_conformance([name], n_frames=24, timeout=20.0)
        assert report.matches, "\n".join(report.mismatches())
        assert report.des.digest == report.expected_digest
        assert report.udp.digest == report.expected_digest
        assert report.des.verdict == report.udp.verdict == ((True, ()))

    def test_lossy_run_actually_retransmits(self):
        (report,) = run_conformance(["lossy"], n_frames=24, timeout=20.0)
        assert report.des.retransmissions is not None
        assert report.des.retransmissions > 0
        assert report.matches

"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulator.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    StopSimulation,
    Timer,
)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "late")
        sim.schedule(1.0, log.append, "early")
        sim.run()
        assert log == ["early", "late"]

    def test_same_time_callbacks_run_fifo(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == 3.5

    def test_tie_break_is_scheduling_order_across_entry_points(self):
        """Same-timestamp callbacks fire in exact scheduling order, no
        matter how they were scheduled (relative, absolute, mid-run)."""
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "rel-first")
        sim.schedule_at(1.0, log.append, "abs-second")

        def reentrant():
            log.append("reentrant-third")
            # Scheduled *during* dispatch at t=1.0 with zero delay:
            # still runs after everything already queued for t=1.0.
            sim.schedule(0.0, log.append, "nested-fifth")

        sim.schedule(1.0, reentrant)
        sim.schedule_at(1.0, log.append, "abs-fourth")
        sim.run()
        assert log == [
            "rel-first", "abs-second", "reentrant-third",
            "abs-fourth", "nested-fifth",
        ]

    def test_tie_break_identical_across_runs(self):
        """Two identically-built simulations dispatch ties identically
        (the determinism contract every seeded experiment relies on)."""

        def build_and_run():
            sim = Simulator()
            log = []
            for index in range(50):
                # All land at t=1.0 via alternating entry points.
                if index % 2:
                    sim.schedule_at(1.0, log.append, index)
                else:
                    sim.schedule(1.0, log.append, index)
            sim.run()
            return log

        assert build_and_run() == build_and_run() == list(range(50))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "x")
        assert sim.run(until=4.0) == 4.0
        assert fired == []
        assert sim.now == 4.0

    def test_run_until_includes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(4.0, fired.append, "x")
        sim.run(until=4.0)
        assert fired == ["x"]

    def test_run_continues_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "x")
        sim.run(until=4.0)
        sim.run()
        assert fired == ["x"]
        assert sim.now == 10.0

    def test_run_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.1, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_stop_halts_run(self):
        sim = Simulator()
        log = []

        def first():
            log.append("a")
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log == ["a"]
        assert sim.now == 1.0

    def test_peek_returns_next_event_time(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(2.5, lambda: None)
        assert sim.peek() == 2.5


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        got = []
        event.add_callback(lambda e: got.append(e.value))
        event.succeed(42)
        sim.run()
        assert got == [42]

    def test_callback_after_trigger_still_fires(self, sim):
        event = sim.event()
        event.succeed("v")
        got = []
        event.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["v"]

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_triggered_and_ok_flags(self, sim):
        event = sim.event()
        assert not event.triggered
        event.fail(RuntimeError("boom"))
        assert event.triggered and not event.ok

    def test_timeout_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)


class TestProcesses:
    def test_process_advances_through_timeouts(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.5)
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 1.0, 3.5]

    def test_process_receives_timeout_value(self, sim):
        got = []

        def proc():
            value = yield sim.timeout(1.0, "payload")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_process_completion_event_carries_return(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        completion = sim.process(proc())
        sim.run()
        assert completion.triggered and completion.value == "done"

    def test_process_exception_fails_completion(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise ValueError("inner")

        completion = sim.process(proc())
        sim.run()
        assert completion.triggered and not completion.ok
        assert isinstance(completion.value, ValueError)

    def test_process_waits_on_plain_event(self, sim):
        event = sim.event()
        got = []

        def waiter():
            value = yield event
            got.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(4.0, event.succeed, "go")
        sim.run()
        assert got == [(4.0, "go")]

    def test_failed_event_raises_inside_process(self, sim):
        event = sim.event()
        caught = []

        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        sim.schedule(1.0, event.fail, RuntimeError("bad"))
        sim.run()
        assert caught == ["bad"]

    def test_interrupt_raises_in_process(self, sim):
        caught = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                caught.append((sim.now, interrupt.cause))

        process = sim.process(sleeper())
        sim.schedule(2.0, process.interrupt, "wake")
        sim.run()
        assert caught == [(2.0, "wake")]

    def test_stop_simulation_from_process(self, sim):
        log = []

        def proc():
            yield sim.timeout(1.0)
            raise StopSimulation

        sim.process(proc())
        sim.schedule(5.0, log.append, "later")
        sim.run()
        assert log == []

    def test_processes_interleave(self, sim):
        log = []

        def proc(name, step):
            for _ in range(3):
                yield sim.timeout(step)
                log.append((name, sim.now))

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 1.5))
        sim.run()
        # At t=3.0 both fire; b's timeout was scheduled earlier (at 1.5)
        # so FIFO tie-breaking runs it first.
        assert log == [
            ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5),
        ]


class TestCombinators:
    def test_any_of_fires_on_first(self, sim):
        winner = []

        def proc():
            event = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
            winner.append((sim.now, event.value))

        sim.process(proc())
        sim.run()
        assert winner == [(1.0, "fast")]

    def test_all_of_waits_for_every_event(self, sim):
        got = []

        def proc():
            values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
            got.append((sim.now, values))

        sim.process(proc())
        sim.run()
        assert got == [(3.0, ["a", "b"])]

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])

    def test_all_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.all_of([])


class TestTimer:
    def test_timer_fires_after_delay(self, sim):
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_pushes_deadline(self, sim):
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, timer.restart, 2.0)
        sim.run()
        assert fired == [3.0]

    def test_cancel_suppresses_expiry(self, sim):
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, timer.cancel)
        sim.run()
        assert fired == []

    def test_running_and_deadline(self, sim):
        timer = sim.timer(lambda: None)
        assert not timer.running and timer.deadline is None
        timer.start(5.0)
        assert timer.running and timer.deadline == 5.0
        timer.cancel()
        assert not timer.running

    def test_timer_reusable_after_expiry(self, sim):
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]

    def test_negative_delay_rejected(self, sim):
        timer = sim.timer(lambda: None)
        with pytest.raises(ValueError):
            timer.start(-1.0)


class TestTimerCompaction:
    """Batched cancellation: restart/cancel churn must not grow the heap
    unboundedly, and compaction must never change dispatch behaviour."""

    def test_restart_churn_keeps_heap_bounded(self, sim):
        timer = sim.timer(lambda: None)
        churn = 10 * sim._COMPACT_MIN_STALE
        for _ in range(churn):
            timer.start(1.0)  # each restart orphans the previous entry
        # Without batch compaction the heap would hold `churn` entries.
        assert len(sim._heap) < churn
        assert sim._stale_timers < sim._COMPACT_MIN_STALE

    def test_compaction_preserves_dispatch_order(self, sim):
        log = []
        # Live work interleaved with churned timers.
        for index in range(20):
            sim.schedule(1.0 + index * 0.1, log.append, index)
        timers = [sim.timer(lambda: log.append("timer")) for _ in range(8)]
        for _ in range(50):
            for timer in timers:
                timer.start(5.0)
        for timer in timers:
            timer.cancel()
        sim._compact()
        sim.run()
        assert log == list(range(20))  # cancelled timers never fired

    def test_compaction_keeps_pending_timer(self, sim):
        fired = []
        keeper = sim.timer(lambda: fired.append(sim.now))
        keeper.start(2.0)
        churn = sim.timer(lambda: fired.append("churn"))
        for _ in range(5 * sim._COMPACT_MIN_STALE):
            churn.start(1.0)
        churn.cancel()
        sim._compact()
        sim.run()
        assert fired == [2.0]

    def test_stale_counter_resets_after_compaction(self, sim):
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.start(1.0)
        for _ in range(sim._COMPACT_MIN_STALE + 5):
            timer.start(1.0)
        # The compaction triggered by churn zeroed the stale count.
        assert sim._stale_timers <= sim._COMPACT_MIN_STALE
        timer.cancel()
        sim.run()
        # The clock may advance over any remaining stale entries, but
        # the cancelled timer must never fire.
        assert fired == []

"""Tests for the full-duplex link: serialization, propagation, errors, outages."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.errormodel import BernoulliChannel, PerfectChannel
from repro.simulator.link import (
    LIGHT_SPEED_KM_S,
    FullDuplexLink,
    SimplexChannel,
    delay_from_distance_km,
)
from repro.simulator.rng import StreamRegistry


@dataclass(frozen=True)
class Frame:
    size_bits: int = 1000
    is_control: bool = False
    label: str = ""


def make_channel(sim, **kwargs) -> SimplexChannel:
    defaults = dict(
        name="chan", bit_rate=1e6, propagation_delay=0.010,
        streams=StreamRegistry(seed=2),
    )
    defaults.update(kwargs)
    return SimplexChannel(sim, **defaults)


class TestSerialization:
    def test_delivery_time_is_tx_plus_propagation(self):
        sim = Simulator()
        channel = make_channel(sim)
        arrivals = []
        channel.attach_receiver(lambda f, c: arrivals.append(sim.now))
        channel.send(Frame(size_bits=1000))  # 1 ms at 1 Mbps
        sim.run()
        assert arrivals == [pytest.approx(0.001 + 0.010)]

    def test_back_to_back_frames_serialize(self):
        sim = Simulator()
        channel = make_channel(sim)
        arrivals = []
        channel.attach_receiver(lambda f, c: arrivals.append((f.label, sim.now)))
        channel.send(Frame(label="a"))
        channel.send(Frame(label="b"))
        sim.run()
        assert arrivals[0] == ("a", pytest.approx(0.011))
        assert arrivals[1] == ("b", pytest.approx(0.012))

    def test_fifo_order_preserved(self):
        sim = Simulator()
        channel = make_channel(sim)
        arrivals = []
        channel.attach_receiver(lambda f, c: arrivals.append(f.label))
        for i in range(20):
            channel.send(Frame(label=str(i)))
        sim.run()
        assert arrivals == [str(i) for i in range(20)]

    def test_transmission_time(self):
        sim = Simulator()
        channel = make_channel(sim, bit_rate=2e6)
        assert channel.transmission_time(Frame(size_bits=1000)) == pytest.approx(5e-4)

    def test_idle_callbacks_fire_when_queue_drains(self):
        sim = Simulator()
        channel = make_channel(sim)
        channel.attach_receiver(lambda f, c: None)
        idles = []
        channel.on_idle(lambda: idles.append(sim.now))
        channel.send(Frame())
        channel.send(Frame())
        sim.run()
        # One idle notification, after both serializations complete.
        assert idles == [pytest.approx(0.002)]

    def test_queue_length_and_is_idle(self):
        sim = Simulator()
        channel = make_channel(sim)
        channel.attach_receiver(lambda f, c: None)
        assert channel.is_idle
        channel.send(Frame())
        channel.send(Frame())
        assert not channel.is_idle
        assert channel.queue_length == 1  # one serializing, one queued
        sim.run()
        assert channel.is_idle

    def test_utilization(self):
        sim = Simulator()
        channel = make_channel(sim)
        channel.attach_receiver(lambda f, c: None)
        channel.send(Frame(size_bits=1000))  # 1 ms busy
        sim.run(until=0.1)
        assert channel.utilization(0.1) == pytest.approx(0.01)

    def test_missing_receiver_raises(self):
        sim = Simulator()
        channel = make_channel(sim)
        channel.send(Frame())
        with pytest.raises(RuntimeError, match="no receiver"):
            sim.run()

    def test_invalid_bit_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_channel(sim, bit_rate=0)


class TestErrors:
    def test_separate_models_for_frame_classes(self):
        sim = Simulator()
        channel = make_channel(
            sim,
            iframe_errors=BernoulliChannel(1.0),  # always corrupt data
            cframe_errors=PerfectChannel(),
        )
        outcomes = []
        channel.attach_receiver(lambda f, c: outcomes.append((f.is_control, c)))
        channel.send(Frame(is_control=False))
        channel.send(Frame(is_control=True))
        sim.run()
        assert outcomes == [(False, True), (True, False)]

    def test_corrupted_frames_still_delivered(self):
        """Assumption 9: corruption is detectable, not silent loss."""
        sim = Simulator()
        channel = make_channel(sim, iframe_errors=BernoulliChannel(1.0))
        received = []
        channel.attach_receiver(lambda f, c: received.append(c))
        for _ in range(5):
            channel.send(Frame())
        sim.run()
        assert received == [True] * 5
        assert channel.frames_corrupted == 5


class TestTimeVaryingDelay:
    def test_callable_delay_used_per_departure(self):
        sim = Simulator()
        channel = make_channel(sim, propagation_delay=lambda t: 0.010 + t)
        arrivals = []
        channel.attach_receiver(lambda f, c: arrivals.append(sim.now))
        channel.send(Frame())  # departs 0, done 0.001, delay(0)=0.010
        sim.run()
        assert arrivals == [pytest.approx(0.011)]

    def test_arrivals_never_reorder_under_shrinking_delay(self):
        sim = Simulator()
        # Delay collapses over time: naive arrival times would reorder.
        channel = make_channel(sim, propagation_delay=lambda t: max(0.0, 0.1 - 40 * t))
        arrivals = []
        channel.attach_receiver(lambda f, c: arrivals.append((f.label, sim.now)))
        for i in range(5):
            channel.send(Frame(label=str(i)))
        sim.run()
        labels = [a[0] for a in arrivals]
        times = [a[1] for a in arrivals]
        assert labels == ["0", "1", "2", "3", "4"]
        assert times == sorted(times)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        channel = make_channel(sim, propagation_delay=lambda t: -1.0)
        channel.attach_receiver(lambda f, c: None)
        channel.send(Frame())
        with pytest.raises(ValueError):
            sim.run()


class TestOutage:
    def test_frames_lost_while_down(self):
        sim = Simulator()
        channel = make_channel(sim)
        received = []
        channel.attach_receiver(lambda f, c: received.append(f.label))
        channel.send(Frame(label="before"))
        sim.schedule(0.005, channel.down)  # cut mid-flight
        sim.run()
        # Frame finished serializing at 1 ms (link still up at that
        # decision point) but the cut at 5 ms kills the in-flight delivery.
        assert received == []
        assert channel.frames_lost_outage == 1

    def test_recovery_after_up(self):
        sim = Simulator()
        channel = make_channel(sim)
        received = []
        channel.attach_receiver(lambda f, c: received.append(f.label))
        channel.down()
        channel.send(Frame(label="lost"))
        sim.schedule(0.05, channel.up)
        sim.schedule(0.06, lambda: channel.send(Frame(label="ok")))
        sim.run()
        assert received == ["ok"]

    def outage_events(self, when_down):
        """Trace records from one frame sent at t=0 with a cut at *when_down*."""
        from repro.simulator.trace import Tracer

        sim = Simulator()
        events = []
        tracer = Tracer()
        tracer.listeners.append(
            lambda r: r.event == "frame_lost_outage" and events.append(r)
        )
        channel = make_channel(sim, tracer=tracer)
        channel.attach_receiver(lambda f, c: None)
        channel.send(Frame(is_control=True))
        sim.schedule(when_down, channel.down)
        sim.run()
        return events

    def test_loss_during_propagation_traced(self):
        # Serialization ends at 1 ms; the 5 ms cut catches the frame
        # in flight, so the loss is attributed to the propagate phase.
        [record] = self.outage_events(0.005)
        assert record.detail == {"phase": "propagate", "control": True}

    def test_loss_during_serialization_traced(self):
        # The cut lands at 0.5 ms, while the transmitter still owns the
        # frame: same counter, but the phase tells the two cases apart.
        [record] = self.outage_events(0.0005)
        assert record.detail == {"phase": "serialize", "control": True}

    def test_both_phases_count_identically(self):
        for when in (0.005, 0.0005):
            sim = Simulator()
            channel = make_channel(sim)
            channel.attach_receiver(lambda f, c: None)
            channel.send(Frame())
            sim.schedule(when, channel.down)
            sim.run()
            assert channel.frames_lost_outage == 1


class TestFullDuplexLink:
    def test_two_independent_directions(self):
        sim = Simulator()
        link = FullDuplexLink(sim, bit_rate=1e6, propagation_delay=0.010)
        to_b, to_a = [], []
        link.attach(lambda f, c: to_a.append(f.label), lambda f, c: to_b.append(f.label))
        link.forward.send(Frame(label="a->b"))
        link.reverse.send(Frame(label="b->a"))
        sim.run()
        assert to_b == ["a->b"] and to_a == ["b->a"]

    def test_round_trip_time(self):
        sim = Simulator()
        link = FullDuplexLink(sim, bit_rate=1e6, propagation_delay=0.010)
        assert link.round_trip_time() == pytest.approx(0.020)

    def test_down_up_both_directions(self):
        sim = Simulator()
        link = FullDuplexLink(sim, bit_rate=1e6, propagation_delay=0.010)
        link.down()
        assert not link.forward.is_up and not link.reverse.is_up
        link.up()
        assert link.forward.is_up and link.reverse.is_up


class TestHelpers:
    def test_delay_from_distance(self):
        assert delay_from_distance_km(LIGHT_SPEED_KM_S) == pytest.approx(1.0)
        assert delay_from_distance_km(0.0) == 0.0
        with pytest.raises(ValueError):
            delay_from_distance_km(-1.0)

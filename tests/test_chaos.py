"""Chaos-soak harness: episode determinism, soak aggregation, CLI."""

from __future__ import annotations

import pytest

from repro.chaos import (
    EpisodeSpec,
    generate_episode,
    generate_episodes,
    run_episode,
    run_soak,
)
from repro.chaos import generate_transport_episode, run_transport_episode
from repro.cli import main


class TestEpisodeDeterminism:
    def test_regeneration_is_exact(self):
        first = generate_episode(5, 3)
        second = generate_episode(5, 3)
        assert first == second
        assert repr(first) == repr(second)

    def test_distinct_indices_differ(self):
        specs = generate_episodes(5, 8)
        assert len({repr(spec) for spec in specs}) == 8
        assert [spec.index for spec in specs] == list(range(8))

    def test_distinct_master_seeds_differ(self):
        assert generate_episode(1, 0) != generate_episode(2, 0)

    def test_reproducer_names_the_replay_command(self):
        spec = generate_episode(7, 2)
        reproducer = spec.reproducer()
        assert reproducer["master_seed"] == 7
        assert reproducer["episode"] == 2
        assert "--seed 7" in reproducer["command"]
        assert "--only 2" in reproducer["command"]

    def test_fault_plan_windows_fit_the_run(self):
        for spec in generate_episodes(11, 10):
            assert 1 <= len(spec.fault_plan) <= 3
            for fault in spec.fault_plan:
                assert 0.0 < fault.start < spec.max_time
                assert fault.duration > 0

    def test_count_validated(self):
        with pytest.raises(ValueError):
            generate_episodes(0, 0)


class TestRunEpisode:
    def test_report_shape_and_clean_outcome(self):
        report = run_episode(generate_episode(3, 0))
        assert report["ok"] is True
        assert report["violations"] == []
        assert report["offered"] > 0
        assert report["delivered"] == report["offered"]
        assert report["dest_released"] == report["delivered"]
        assert report["reproducer"]["master_seed"] == 3
        assert set(report["monitor_summary"]) >= {"zero-loss", "failure-latency"}

    def test_rerun_is_bit_identical(self):
        spec = generate_episode(11, 1)
        assert run_episode(spec) == run_episode(spec)


class TestRunSoak:
    def test_small_soak_completes_clean(self):
        result = run_soak(episodes=4, master_seed=3)
        assert result.ok
        assert result.completed == result.requested == 4
        summary = result.summary()
        assert summary["episodes_completed"] == 4
        assert summary["violations"] == 0
        assert summary["ok"] is True

    def test_only_reruns_a_single_episode(self):
        result = run_soak(episodes=5, master_seed=3, only=4)
        assert result.completed == 1
        assert result.episodes[0]["episode"] == 4

    def test_only_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside the generated range"):
            run_soak(episodes=5, master_seed=3, only=5)

    def test_fail_fast_stops_after_first_violation(self, monkeypatch):
        import repro.chaos.soak as soak_module

        calls = []

        def fake_run_episode(spec):
            calls.append(spec.index)
            return {
                "episode": spec.index,
                "ok": spec.index != 1,
                "violations": (
                    [] if spec.index != 1
                    else [{"invariant": "zero-loss", "time": 0.5,
                           "message": "synthetic"}]
                ),
                "monitor_summary": {"zero-loss": 0 if spec.index != 1 else 1},
            }

        monkeypatch.setattr(soak_module, "run_episode", fake_run_episode)
        result = run_soak(episodes=6, master_seed=3, fail_fast=True)
        assert calls == [0, 1]  # episode 2+ never scheduled
        assert result.stopped_early
        assert not result.ok
        assert len(result.violations) == 1
        # The violating episode's report is retained.
        assert any(not ep["ok"] for ep in result.episodes)

    def test_progress_sees_each_report(self):
        seen = []
        run_soak(episodes=3, master_seed=3, progress=seen.append)
        assert [r["episode"] for r in seen] == [0, 1, 2]


class TestTransportEpisodes:
    def test_regeneration_is_exact(self):
        assert generate_transport_episode(5, 3) == generate_transport_episode(5, 3)

    def test_distinct_seed_namespace_from_des_episodes(self):
        udp, des = generate_transport_episode(5, 0), generate_episode(5, 0)
        assert udp.seed != des.seed
        assert udp.backend == "udp" and des.backend == "des"

    def test_reproducer_names_the_udp_backend(self):
        spec = generate_transport_episode(7, 2)
        reproducer = spec.reproducer()
        assert reproducer["backend"] == "udp"
        assert "--backend udp" in reproducer["command"]
        assert "--only 2" in reproducer["command"]
        assert "backend=udp" in spec.label

    def test_generate_episodes_dispatches_on_backend(self):
        specs = generate_episodes(7, 3, backend="udp")
        assert [s.backend for s in specs] == ["udp"] * 3
        assert specs == [generate_transport_episode(7, i) for i in range(3)]
        with pytest.raises(ValueError, match="backend"):
            generate_episodes(7, 3, backend="tcp")

    def test_fault_plans_use_transport_vocabulary(self):
        kinds = set()
        for i in range(12):
            spec = generate_transport_episode(9, i)
            for fault in spec.fault_plan:
                kinds.add(fault.kind)
                assert 0.0 <= fault.start < spec.max_time
        # The generated stream must actually draw supervisor-class faults.
        assert kinds & {"endpoint-stall", "peer-restart",
                        "handshake-blackhole", "send-error-burst"}

    def test_run_transport_episode_report_shape(self):
        # Find a small fault-free episode: those also exercise the DES
        # conformance cross-check without riding out stall windows.
        spec = next(
            s for i in range(64)
            for s in [generate_transport_episode(7, i)]
            if not len(s.fault_plan) and s.n_frames <= 24
        )
        report = run_transport_episode(spec)
        assert report["ok"] is True, report["violations"]
        assert report["backend"] == "udp"
        assert report["completed"] is True
        assert report["delivered"] == spec.n_frames
        assert report["conformance"]["match"] is True
        assert report["reproducer"]["backend"] == "udp"


class TestSoakCli:
    def test_cli_soak_exits_zero_when_clean(self, capsys):
        code = main(["soak", "--episodes", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all invariants held" in out
        assert "2/2 episodes" in out

    def test_cli_soak_only_replays_one_episode(self, capsys):
        code = main(["soak", "--episodes", "3", "--seed", "3", "--only", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "episode[  2]" in out

    def test_cli_soak_validates_arguments(self, capsys):
        assert main(["soak", "--episodes", "0"]) == 2
        assert main(["soak", "--jobs", "0"]) == 2
        assert main(["soak", "--episodes", "2", "--only", "9"]) == 2

    def test_cli_soak_exits_nonzero_on_violation(self, capsys, monkeypatch):
        import repro.chaos.soak as soak_module

        def fake_run_episode(spec):
            return {
                "episode": spec.index,
                "scenario": spec.scenario.name,
                "fault_plan": spec.fault_plan.to_dict(),
                "delivered": 0, "offered": 1, "failures_declared": 0,
                "ok": False,
                "violations": [{
                    "invariant": "zero-loss", "time": 0.25,
                    "message": "synthetic loss",
                    "trace_window": ["t=0.2 a payload_accepted"],
                }],
                "monitor_summary": {"zero-loss": 1},
                "reproducer": spec.reproducer(),
            }

        monkeypatch.setattr(soak_module, "run_episode", fake_run_episode)
        code = main(["soak", "--episodes", "1", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "zero-loss" in out
        assert "synthetic loss" in out
        assert "reproduce: python -m repro soak --seed 3" in out

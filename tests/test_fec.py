"""Tests for the FEC substrate: CRC, interleaving, codecs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fec.codec import (
    ConcatenatedCodecModel,
    DEFAULT_CFRAME_CODEC,
    DEFAULT_IFRAME_CODEC,
    HammingCode74,
    HammingCodecModel,
    IdentityCodec,
    RepetitionCode,
    RepetitionCodecModel,
)
from repro.fec.crc import (
    append_crc16,
    append_crc32,
    crc16_ccitt,
    crc32_ieee,
    verify_crc16,
    verify_crc32,
)
from repro.fec.interleaver import BlockInterleaver, burst_spread


class TestCrc:
    def test_crc16_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_crc32_known_vector(self):
        # CRC-32 (IEEE) of "123456789" is 0xCBF43926.
        assert crc32_ieee(b"123456789") == 0xCBF43926

    def test_roundtrip_16(self):
        framed = append_crc16(b"hello world")
        assert verify_crc16(framed)

    def test_roundtrip_32(self):
        framed = append_crc32(b"hello world")
        assert verify_crc32(framed)

    def test_single_bit_flip_detected_16(self):
        framed = bytearray(append_crc16(b"payload data here"))
        for byte_index in range(len(framed)):
            for bit in range(8):
                corrupted = bytearray(framed)
                corrupted[byte_index] ^= 1 << bit
                assert not verify_crc16(bytes(corrupted))

    def test_short_frames_rejected(self):
        assert not verify_crc16(b"x")
        assert not verify_crc32(b"xyz")

    @given(st.binary(min_size=0, max_size=200))
    def test_crc16_roundtrip_property(self, payload):
        assert verify_crc16(append_crc16(payload))

    @given(st.binary(min_size=1, max_size=100), st.integers(min_value=0))
    def test_crc16_detects_any_single_byte_change(self, payload, position):
        framed = bytearray(append_crc16(payload))
        index = position % len(framed)
        framed[index] ^= 0xFF
        assert not verify_crc16(bytes(framed))

    @given(st.binary(min_size=0, max_size=200))
    def test_crc32_roundtrip_property(self, payload):
        assert verify_crc32(append_crc32(payload))


class TestInterleaver:
    def test_known_permutation(self):
        interleaver = BlockInterleaver(rows=3, cols=4)
        assert interleaver.interleave(list(range(12))) == [
            0, 4, 8, 1, 5, 9, 2, 6, 10, 3, 7, 11,
        ]

    def test_wrong_block_size_rejected(self):
        interleaver = BlockInterleaver(rows=2, cols=3)
        with pytest.raises(ValueError):
            interleaver.interleave([1, 2, 3])

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            BlockInterleaver(rows=0, cols=4)

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=16))
    def test_roundtrip_property(self, rows, cols):
        interleaver = BlockInterleaver(rows=rows, cols=cols)
        block = list(range(rows * cols))
        assert interleaver.deinterleave(interleaver.interleave(block)) == block

    def test_array_roundtrip(self):
        interleaver = BlockInterleaver(rows=5, cols=7)
        block = np.arange(35)
        out = interleaver.deinterleave_array(interleaver.interleave_array(block))
        assert np.array_equal(out, block)

    def test_burst_within_rows_spreads_to_one_per_codeword(self):
        """The interleaver's defining guarantee: a channel burst no longer
        than `rows` symbols hits each codeword at most once."""
        interleaver = BlockInterleaver(rows=8, cols=16)
        for start in range(0, interleaver.block_size, 7):
            assert burst_spread(interleaver, start, burst_length=8) <= 1

    def test_long_burst_exceeds_single_error(self):
        interleaver = BlockInterleaver(rows=4, cols=8)
        assert burst_spread(interleaver, 0, burst_length=9) >= 2

    @given(
        rows=st.integers(min_value=2, max_value=12),
        cols=st.integers(min_value=2, max_value=12),
        start=st.integers(min_value=0, max_value=200),
    )
    def test_burst_spread_bound_property(self, rows, cols, start):
        """Spread of a burst of length L is at most ceil(L / rows)."""
        interleaver = BlockInterleaver(rows=rows, cols=cols)
        length = min(rows, interleaver.block_size)
        spread = burst_spread(interleaver, start % interleaver.block_size, length)
        assert spread <= 1


class TestHammingCode:
    def test_roundtrip_clean(self):
        code = HammingCode74()
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, size=400).astype(np.uint8)
        assert np.array_equal(code.decode(code.encode(data)), data)

    def test_corrects_any_single_error_per_codeword(self):
        code = HammingCode74()
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        encoded = code.encode(data)
        for position in range(7):
            corrupted = encoded.copy()
            corrupted[position] ^= 1
            assert np.array_equal(code.decode(corrupted), data), position

    def test_length_validation(self):
        code = HammingCode74()
        with pytest.raises(ValueError):
            code.encode(np.array([1, 0, 1], dtype=np.uint8))
        with pytest.raises(ValueError):
            code.decode(np.array([1] * 6, dtype=np.uint8))

    def test_interleaver_plus_hamming_fixes_burst(self):
        """End-to-end Paul-et-al. pipeline: a burst of `rows` bit errors on
        the channel is fully corrected after de-interleave + decode."""
        code = HammingCode74()
        rows, cols = 16, 7  # one codeword per interleaver row
        interleaver = BlockInterleaver(rows=rows, cols=cols)
        rng = np.random.default_rng(5)
        data = rng.integers(0, 2, size=rows * 4).astype(np.uint8)
        channel_block = interleaver.interleave_array(code.encode(data))
        # A contiguous burst of `rows` flipped bits.
        start = 23
        channel_block[start : start + rows] ^= 1
        decoded = code.decode(np.array(interleaver.deinterleave_array(channel_block)))
        assert np.array_equal(decoded, data)


class TestRepetitionCode:
    def test_roundtrip_and_correction(self):
        code = RepetitionCode(3)
        data = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        encoded = code.encode(data)
        encoded[4] ^= 1  # one flip inside a triple
        assert np.array_equal(code.decode(encoded), data)

    def test_even_factor_rejected(self):
        with pytest.raises(ValueError):
            RepetitionCode(2)


class TestCodecModels:
    def test_identity_passthrough(self):
        assert IdentityCodec().residual_ber(1e-4) == 1e-4

    def test_repetition_exact_formula(self):
        model = RepetitionCodecModel(n=3)
        p = 0.01
        expected = 3 * p**2 * (1 - p) + p**3
        assert model.residual_ber(p) == pytest.approx(expected)

    def test_hamming_improves_small_ber(self):
        model = HammingCodecModel()
        assert model.residual_ber(1e-4) < 1e-4

    def test_concatenated_composes(self):
        inner, outer = HammingCodecModel(), RepetitionCodecModel(n=3)
        combo = ConcatenatedCodecModel(inner=inner, outer=outer)
        assert combo.residual_ber(1e-3) == pytest.approx(
            outer.residual_ber(inner.residual_ber(1e-3))
        )
        assert combo.rate == pytest.approx(inner.rate * outer.rate)

    def test_control_codec_stronger_than_data_codec(self):
        """Link-model assumption 4: the control-frame FEC is more powerful."""
        for ber in (1e-3, 1e-4, 1e-5):
            assert DEFAULT_CFRAME_CODEC.residual_ber(ber) < DEFAULT_IFRAME_CODEC.residual_ber(ber)

    @given(st.floats(min_value=0.0, max_value=0.4))
    def test_hamming_residual_is_probability(self, ber):
        residual = HammingCodecModel().residual_ber(ber)
        assert 0.0 <= residual <= 1.0

    @given(
        st.floats(min_value=1e-8, max_value=0.01),
        st.floats(min_value=1e-8, max_value=0.01),
    )
    def test_repetition_monotone(self, a, b):
        model = RepetitionCodecModel(n=5)
        low, high = sorted((a, b))
        assert model.residual_ber(low) <= model.residual_ber(high) + 1e-18

    def test_channel_bits_accounts_for_rate(self):
        assert RepetitionCodecModel(n=3).channel_bits(100) == 300
        assert HammingCodecModel().channel_bits(4) == 7

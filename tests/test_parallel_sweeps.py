"""Tests for the parallel sweep runner (`repro.experiments.parallel`).

The contract under test: parallel execution is *bit-identical* to
serial, the on-disk cache turns warm re-runs into zero simulations, and
the cache key discriminates every input that changes a result.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import ExperimentResult, run_experiment
from repro.experiments.parallel import (
    ExperimentPoint,
    MeasurePoint,
    MeasureSpec,
    ResultCache,
    parallel_replicate,
    parallel_replicate_all,
    replication_seeds,
    run_experiments_parallel,
    run_sweep,
)
from repro.experiments.sweeps import replicate, replicate_all
from repro.simulator.trace import Tracer
from repro.workloads.scenarios import preset

DURATION = 0.2
METRICS = ["efficiency", "eta", "delivered"]


def _spec(protocol: str = "lams", **kwargs) -> MeasureSpec:
    kwargs.setdefault("duration", DURATION)
    return MeasureSpec.create(
        "measure_saturated", preset("short_hop"), protocol, **kwargs
    )


# -- seed streams -----------------------------------------------------------


class TestReplicationSeeds:
    def test_deterministic_across_calls(self):
        assert replication_seeds(0, 6) == replication_seeds(0, 6)

    def test_prefix_stable(self):
        # Growing the count extends the list; it never reshuffles it.
        assert replication_seeds(7, 8)[:4] == replication_seeds(7, 4)

    def test_master_seed_changes_stream(self):
        assert replication_seeds(0, 4) != replication_seeds(1, 4)

    def test_name_changes_stream(self):
        assert replication_seeds(0, 4) != replication_seeds(0, 4, name="other")

    def test_distinct_within_stream(self):
        seeds = replication_seeds(3, 16)
        assert len(set(seeds)) == len(seeds)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            replication_seeds(0, 0)


# -- spec construction -------------------------------------------------------


class TestMeasureSpec:
    def test_unknown_runner_rejected(self):
        with pytest.raises(ValueError, match="unknown runner"):
            MeasureSpec.create("no_such_runner", preset("short_hop"))

    def test_kwargs_canonicalised(self):
        a = MeasureSpec.create("measure_saturated", preset("short_hop"),
                               "lams", duration=1.0, start_time=0.0)
        b = MeasureSpec.create("measure_saturated", preset("short_hop"),
                               "lams", start_time=0.0, duration=1.0)
        assert a == b

    def test_measure_matches_serial_runner(self):
        spec = _spec()
        from repro.experiments.runner import measure_saturated

        direct = measure_saturated(preset("short_hop"), "lams", DURATION, seed=5)
        assert spec.measure()(5) == direct


# -- parallel == serial ------------------------------------------------------


class TestParallelDeterminism:
    def test_replicate_all_bit_identical_to_serial(self):
        spec = _spec()
        seeds = replication_seeds(0, 4)
        serial = replicate_all(spec.measure(), METRICS, seeds)
        parallel = parallel_replicate_all(spec, METRICS, seeds, jobs=4)
        assert parallel == serial
        for metric in METRICS:
            assert parallel[metric].samples == serial[metric].samples
            assert repr(parallel[metric]) == repr(serial[metric])

    def test_replicate_bit_identical_to_serial(self):
        spec = _spec("hdlc")
        seeds = replication_seeds(1, 3)
        serial = replicate(spec.measure(), "efficiency", seeds)
        parallel = parallel_replicate(spec, "efficiency", seeds, jobs=2)
        assert parallel == serial

    def test_jobs_do_not_change_results(self):
        spec = _spec()
        seeds = replication_seeds(2, 3)
        one = parallel_replicate_all(spec, ["efficiency"], seeds, jobs=1)
        four = parallel_replicate_all(spec, ["efficiency"], seeds, jobs=4)
        assert one == four

    def test_results_in_seed_order(self):
        spec = _spec()
        seeds = replication_seeds(0, 3)
        points = [MeasurePoint(spec, seed) for seed in seeds]
        results = run_sweep(points, jobs=3)
        for seed, result in zip(seeds, results):
            assert result == MeasurePoint(spec, seed).execute()

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            parallel_replicate_all(_spec(), ["efficiency"], [], jobs=2)


# -- cache ------------------------------------------------------------------


class TestResultCache:
    def test_cold_run_executes_everything(self, tmp_path):
        spec = _spec()
        seeds = replication_seeds(0, 3)
        stats = Tracer()
        cache = ResultCache(str(tmp_path))
        parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                               cache=cache, stats=stats)
        assert stats.counter("sweep.executed").value == len(seeds)
        assert stats.counter("sweep.cache_hits").value == 0
        assert len(cache) == len(seeds)

    def test_warm_run_executes_nothing(self, tmp_path):
        spec = _spec()
        seeds = replication_seeds(0, 3)
        cold = parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                                      cache=ResultCache(str(tmp_path)))
        stats = Tracer()
        warm = parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                                      cache=ResultCache(str(tmp_path)),
                                      stats=stats)
        assert warm == cold
        assert stats.counter("sweep.executed").value == 0
        assert stats.counter("sweep.cache_hits").value == len(seeds)

    def test_key_discriminates_inputs(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        base = MeasurePoint(_spec(), 0)
        variants = [
            MeasurePoint(_spec(), 1),                       # seed
            MeasurePoint(_spec("hdlc"), 0),                 # protocol
            MeasurePoint(_spec(duration=0.3), 0),           # runner kwargs
            MeasurePoint(                                   # scenario knob
                dataclasses.replace(_spec(), scenario=preset("noisy")), 0
            ),
        ]
        paths = {cache.path_for(p) for p in [base, *variants]}
        assert len(paths) == len(variants) + 1

    def test_version_bump_invalidates(self, tmp_path):
        spec = _spec()
        cache = ResultCache(str(tmp_path))
        run_sweep([MeasurePoint(spec, 0)], cache=cache)
        other = ResultCache(str(tmp_path), code_version="other-version")
        # Same root, different code version: path_for still keys on the
        # point's own cache_key (which embeds the package version), so
        # the entry is found; a *point* computed under another version
        # would miss.  Simulate by corrupting the stored key.
        path = cache.path_for(MeasurePoint(spec, 0))
        import json

        stored = json.load(open(path))
        stored["key"]["code_version"] = "stale"
        json.dump(stored, open(path, "w"))
        assert other.get(MeasurePoint(spec, 0)) is None
        assert other.misses == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep([MeasurePoint(_spec(), s) for s in (0, 1)], cache=cache)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        run_sweep([point], cache=cache)
        with open(cache.path_for(point), "w") as handle:
            handle.write("{not json")
        assert cache.get(point) is None

    def test_stale_tmp_swept_on_open(self, tmp_path):
        import os

        stale = tmp_path / "deadbeef.json.tmp.1234.0"
        stale.write_text("{torn write}")
        old = 1_000_000.0  # far older than any staleness horizon
        os.utime(stale, (old, old))
        fresh = tmp_path / "cafef00d.json.tmp.5678.0"
        fresh.write_text("{in-flight write}")
        cache = ResultCache(str(tmp_path))
        assert not stale.exists()
        assert fresh.exists()  # young enough to belong to a live writer
        assert cache.stale_tmp_removed == 1

    def test_stale_sweep_ignores_real_entries(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        run_sweep([point], cache=cache)
        path = cache.path_for(point)
        old = 1_000_000.0
        os.utime(path, (old, old))
        reopened = ResultCache(str(tmp_path))
        assert reopened.stale_tmp_removed == 0
        assert reopened.get(point) is not None

    def test_put_never_reuses_a_tmp_name(self, tmp_path, monkeypatch):
        # Freeze the pid so uniqueness must come from the counter and
        # O_EXCL, not from process identity.
        import os

        monkeypatch.setattr(os, "getpid", lambda: 4242)
        cache = ResultCache(str(tmp_path))
        seen: list[str] = []
        real_open = os.open

        def spying_open(path, flags, *args, **kwargs):
            if ".json.tmp." in str(path):
                assert flags & os.O_EXCL, "tmp files must be O_EXCL-created"
                seen.append(str(path))
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", spying_open)
        point_a, point_b = MeasurePoint(_spec(), 0), MeasurePoint(_spec(), 1)
        cache.put(point_a, {"x": 1})
        cache.put(point_b, {"x": 2})
        cache.put(point_a, {"x": 3})
        assert len(seen) == 3
        assert len(set(seen)) == 3
        assert cache.get(point_a) == {"x": 3}
        assert not [n for n in os.listdir(tmp_path) if ".tmp." in n]

    def test_put_collision_retries_with_fresh_name(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        # Pre-create the exact names the next two attempts would pick;
        # O_EXCL forces put() to skip to a third.
        start = next(cache._tmp_ids)
        path = cache.path_for(point)
        pid = os.getpid()
        blockers = [f"{path}.tmp.{pid}.{start + 1}", f"{path}.tmp.{pid}.{start + 2}"]
        for blocker in blockers:
            with open(blocker, "w") as handle:
                handle.write("squatter")
        cache.put(point, {"ok": True})
        assert cache.get(point) == {"ok": True}
        for blocker in blockers:
            assert open(blocker).read() == "squatter"
            os.unlink(blocker)


# -- sweep engine / stats ---------------------------------------------------


class TestRunSweep:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_sweep([], jobs=0)

    def test_progress_callback(self, tmp_path):
        spec = _spec()
        cache = ResultCache(str(tmp_path))
        seen = []
        points = [MeasurePoint(spec, s) for s in (0, 1)]
        run_sweep(points, jobs=2, cache=cache,
                  progress=lambda p, hit: seen.append((p.seed, hit)))
        assert seen == [(0, False), (1, False)]
        seen.clear()
        run_sweep(points, jobs=2, cache=ResultCache(str(tmp_path)),
                  progress=lambda p, hit: seen.append((p.seed, hit)))
        assert seen == [(0, True), (1, True)]

    def test_worker_stats_recorded(self):
        stats = Tracer()
        run_sweep([MeasurePoint(_spec(), s) for s in (0, 1)],
                  jobs=2, stats=stats)
        assert stats.counter("sweep.points").value == 2
        assert stats.counter("sweep.executed").value == 2
        worker_counters = [n for n in stats.counters
                           if n.startswith("sweep.worker.")]
        assert worker_counters
        assert stats.samples["sweep.task_seconds"].count == 2


# -- registry fan-out -------------------------------------------------------


class TestRegistryFanout:
    def test_round_trip_matches_direct_run(self, tmp_path):
        out = run_experiments_parallel(["E1", "E3"], jobs=2,
                                       cache=ResultCache(str(tmp_path)))
        assert set(out) == {"E1", "E3"}
        for eid in ("E1", "E3"):
            direct = run_experiment(eid)
            assert isinstance(out[eid], ExperimentResult)
            assert out[eid].title == direct.title
            assert out[eid].notes == direct.notes
            assert len(out[eid].rows) == len(direct.rows)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            ExperimentPoint.create("E999")

    def test_seed_default_resolved_from_signature(self):
        # E2-sim registers seed=2; model-only E1 defaults to 0.
        assert ExperimentPoint.create("E2-sim").seed == 2
        assert ExperimentPoint.create("E1").seed == 0

    def test_model_experiments_accept_seed(self):
        # Satellite of the same PR: every registry entry takes `seed`.
        result = run_experiment("E1", seed=123)
        assert result.rows


class TestNanGuard:
    def test_parallel_replicate_raises_like_serial(self):
        # measure_failure_recovery's dict has non-float fields; force a
        # NaN through a metric that is NaN for an impossible duration.
        spec = MeasureSpec.create(
            "measure_saturated", preset("short_hop"), "lams", duration=DURATION
        )
        seeds = replication_seeds(0, 2)
        results = parallel_replicate_all(spec, ["sendbuf_avg"], seeds, jobs=2)
        # sendbuf_avg exists for lams; guard only fires on real NaNs, so
        # this documents that clean metrics never trip it.
        assert all(v == v for v in results["sendbuf_avg"].samples)

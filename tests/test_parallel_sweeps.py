"""Tests for the parallel sweep runner (`repro.experiments.parallel`).

The contract under test: parallel execution is *bit-identical* to
serial, the on-disk cache turns warm re-runs into zero simulations, and
the cache key discriminates every input that changes a result.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import ExperimentResult, run_experiment
from repro.experiments.parallel import (
    ExperimentPoint,
    MeasurePoint,
    MeasureSpec,
    ResultCache,
    SweepPool,
    _pool_context,
    _resolve_chunksize,
    _resolve_start_method,
    parallel_replicate,
    parallel_replicate_all,
    replication_seeds,
    resolve_jobs,
    run_experiments_parallel,
    run_sweep,
)
from repro.experiments.sweeps import replicate, replicate_all
from repro.simulator.trace import Tracer
from repro.workloads.scenarios import preset

DURATION = 0.2
METRICS = ["efficiency", "eta", "delivered"]


def _spec(protocol: str = "lams", **kwargs) -> MeasureSpec:
    kwargs.setdefault("duration", DURATION)
    return MeasureSpec.create(
        "measure_saturated", preset("short_hop"), protocol, **kwargs
    )


# -- seed streams -----------------------------------------------------------


class TestReplicationSeeds:
    def test_deterministic_across_calls(self):
        assert replication_seeds(0, 6) == replication_seeds(0, 6)

    def test_prefix_stable(self):
        # Growing the count extends the list; it never reshuffles it.
        assert replication_seeds(7, 8)[:4] == replication_seeds(7, 4)

    def test_master_seed_changes_stream(self):
        assert replication_seeds(0, 4) != replication_seeds(1, 4)

    def test_name_changes_stream(self):
        assert replication_seeds(0, 4) != replication_seeds(0, 4, name="other")

    def test_distinct_within_stream(self):
        seeds = replication_seeds(3, 16)
        assert len(set(seeds)) == len(seeds)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            replication_seeds(0, 0)


# -- spec construction -------------------------------------------------------


class TestMeasureSpec:
    def test_unknown_runner_rejected(self):
        with pytest.raises(ValueError, match="unknown runner"):
            MeasureSpec.create("no_such_runner", preset("short_hop"))

    def test_kwargs_canonicalised(self):
        a = MeasureSpec.create("measure_saturated", preset("short_hop"),
                               "lams", duration=1.0, start_time=0.0)
        b = MeasureSpec.create("measure_saturated", preset("short_hop"),
                               "lams", start_time=0.0, duration=1.0)
        assert a == b

    def test_measure_matches_serial_runner(self):
        spec = _spec()
        from repro.experiments.runner import measure_saturated

        direct = measure_saturated(preset("short_hop"), "lams", DURATION, seed=5)
        assert spec.measure()(5) == direct


# -- parallel == serial ------------------------------------------------------


class TestParallelDeterminism:
    def test_replicate_all_bit_identical_to_serial(self):
        spec = _spec()
        seeds = replication_seeds(0, 4)
        serial = replicate_all(spec.measure(), METRICS, seeds)
        parallel = parallel_replicate_all(spec, METRICS, seeds, jobs=4)
        assert parallel == serial
        for metric in METRICS:
            assert parallel[metric].samples == serial[metric].samples
            assert repr(parallel[metric]) == repr(serial[metric])

    def test_replicate_bit_identical_to_serial(self):
        spec = _spec("hdlc")
        seeds = replication_seeds(1, 3)
        serial = replicate(spec.measure(), "efficiency", seeds)
        parallel = parallel_replicate(spec, "efficiency", seeds, jobs=2)
        assert parallel == serial

    def test_jobs_do_not_change_results(self):
        spec = _spec()
        seeds = replication_seeds(2, 3)
        one = parallel_replicate_all(spec, ["efficiency"], seeds, jobs=1)
        four = parallel_replicate_all(spec, ["efficiency"], seeds, jobs=4)
        assert one == four

    def test_results_in_seed_order(self):
        spec = _spec()
        seeds = replication_seeds(0, 3)
        points = [MeasurePoint(spec, seed) for seed in seeds]
        results = run_sweep(points, jobs=3)
        for seed, result in zip(seeds, results):
            assert result == MeasurePoint(spec, seed).execute()

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            parallel_replicate_all(_spec(), ["efficiency"], [], jobs=2)


# -- cache ------------------------------------------------------------------


class TestResultCache:
    def test_cold_run_executes_everything(self, tmp_path):
        spec = _spec()
        seeds = replication_seeds(0, 3)
        stats = Tracer()
        cache = ResultCache(str(tmp_path))
        parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                               cache=cache, stats=stats)
        assert stats.counter("sweep.executed").value == len(seeds)
        assert stats.counter("sweep.cache_hits").value == 0
        assert len(cache) == len(seeds)

    def test_warm_run_executes_nothing(self, tmp_path):
        spec = _spec()
        seeds = replication_seeds(0, 3)
        cold = parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                                      cache=ResultCache(str(tmp_path)))
        stats = Tracer()
        warm = parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                                      cache=ResultCache(str(tmp_path)),
                                      stats=stats)
        assert warm == cold
        assert stats.counter("sweep.executed").value == 0
        assert stats.counter("sweep.cache_hits").value == len(seeds)

    def test_key_discriminates_inputs(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        base = MeasurePoint(_spec(), 0)
        variants = [
            MeasurePoint(_spec(), 1),                       # seed
            MeasurePoint(_spec("hdlc"), 0),                 # protocol
            MeasurePoint(_spec(duration=0.3), 0),           # runner kwargs
            MeasurePoint(                                   # scenario knob
                dataclasses.replace(_spec(), scenario=preset("noisy")), 0
            ),
        ]
        paths = {cache.path_for(p) for p in [base, *variants]}
        assert len(paths) == len(variants) + 1

    def test_stored_key_version_mismatch_is_a_miss(self, tmp_path):
        import json
        import os

        spec = _spec()
        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(spec, 0)
        run_sweep([point], cache=cache)
        cache.close()
        # Rewrite the shard entry with a stale code_version in the
        # stored key: the digest still matches, so the entry indexes,
        # but get() verifies the full key and must refuse to serve it.
        [shard] = [n for n in os.listdir(tmp_path) if n.startswith("shard-")]
        path = os.path.join(tmp_path, shard)
        digest, payload = open(path).read().rstrip("\n").split("\t", 1)
        stored = json.loads(payload)
        stored["key"]["code_version"] = "stale"
        with open(path, "w") as handle:
            handle.write(f"{digest}\t{json.dumps(stored)}\n")
        other = ResultCache(str(tmp_path))
        assert other.get(point) is None
        assert other.misses == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep([MeasurePoint(_spec(), s) for s in (0, 1)], cache=cache)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_corrupt_shard_entry_is_a_miss(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        run_sweep([point], cache=cache)
        cache.close()
        [shard] = [n for n in os.listdir(tmp_path) if n.startswith("shard-")]
        path = os.path.join(tmp_path, shard)
        length = os.path.getsize(path)
        digest = open(path).read(64)
        with open(path, "w") as handle:  # same digest, garbage payload
            handle.write((digest + "\t{not json").ljust(length - 1) + "\n")
        reopened = ResultCache(str(tmp_path))
        assert reopened.get(point) is None
        assert reopened.misses == 1

    def test_torn_tail_line_skipped(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path))
        a, b = MeasurePoint(_spec(), 0), MeasurePoint(_spec(), 1)
        cache.put(a, {"x": 1})
        cache.put(b, {"x": 2})
        cache.close()
        [shard] = [n for n in os.listdir(tmp_path) if n.startswith("shard-")]
        path = os.path.join(tmp_path, shard)
        # Chop the final line mid-payload: a crash between write and
        # sync.  The reopened cache must keep entry a, drop entry b.
        with open(path, "rb+") as handle:
            data = handle.read()
            handle.truncate(len(data) - 10)
        reopened = ResultCache(str(tmp_path))
        assert reopened.get(a) == {"x": 1}
        assert reopened.get(b) is None
        assert len(reopened) == 1

    def test_stale_tmp_swept_on_open(self, tmp_path):
        import os

        stale = tmp_path / "deadbeef.json.tmp.1234.0"
        stale.write_text("{torn write}")
        old = 1_000_000.0  # far older than any staleness horizon
        os.utime(stale, (old, old))
        fresh = tmp_path / "cafef00d.json.tmp.5678.0"
        fresh.write_text("{in-flight write}")
        cache = ResultCache(str(tmp_path))
        assert not stale.exists()
        assert fresh.exists()  # young enough to belong to a live writer
        assert cache.stale_tmp_removed == 1

    def test_stale_sweep_ignores_shards(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        run_sweep([point], cache=cache)
        cache.close()
        old = 1_000_000.0
        for name in os.listdir(tmp_path):
            os.utime(os.path.join(tmp_path, name), (old, old))
        reopened = ResultCache(str(tmp_path))
        assert reopened.stale_tmp_removed == 0
        assert reopened.get(point) is not None

    def test_writers_never_share_a_shard(self, tmp_path):
        # Two cache instances on the same root (concurrent sweeps, or a
        # parent and a worker) each append to their own O_EXCL shard;
        # a third, fresh open sees both entries.
        import os

        first = ResultCache(str(tmp_path))
        second = ResultCache(str(tmp_path))
        a, b = MeasurePoint(_spec(), 0), MeasurePoint(_spec(), 1)
        first.put(a, {"x": 1})
        second.put(b, {"x": 2})
        first.close()
        second.close()
        shards = [n for n in os.listdir(tmp_path) if n.startswith("shard-")]
        assert len(shards) == 2
        merged = ResultCache(str(tmp_path))
        assert merged.get(a) == {"x": 1}
        assert merged.get(b) == {"x": 2}

    def test_open_writer_retries_on_collision(self, tmp_path, monkeypatch):
        import itertools
        import os

        from repro.experiments import parallel as parallel_module

        monkeypatch.setattr(parallel_module.time, "time_ns", lambda: 0)
        monkeypatch.setattr(ResultCache, "_shard_ids",
                            itertools.chain([7, 7, 8], itertools.count(9)))
        pid = os.getpid()
        squatter = tmp_path / f"shard-{pid}-7-000000.jsonl"
        squatter.write_text("squatter")
        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        cache.put(point, {"ok": True})  # first name collides, retries
        cache.close()
        assert squatter.read_text() == "squatter"
        assert ResultCache(str(tmp_path)).get(point) == {"ok": True}

    def test_contains_probe_keeps_stats_clean(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        assert not cache.contains(point)
        cache.put(point, {"x": 1})
        assert cache.contains(point)
        assert cache.hits == 0 and cache.misses == 0

    def test_put_raw_round_trips(self, tmp_path):
        import json

        cache = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        cache.put_raw(point, json.dumps({"eta": 0.1 + 0.2}))
        assert cache.get(point) == {"eta": 0.1 + 0.2}

    def test_fsync_batching_still_readable(self, tmp_path):
        # With a large fsync interval every put is flushed (visible)
        # even though fsync hasn't happened yet.
        cache = ResultCache(str(tmp_path), fsync_interval=1000)
        point = MeasurePoint(_spec(), 0)
        cache.put(point, {"x": 1})
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(point) == {"x": 1}
        cache.flush()


class TestCacheKeyCanonicalization:
    """path_for is the cache's key identity; it must be insensitive to
    dict ordering and sensitive to every semantic input."""

    class _Point:
        def __init__(self, key):
            self._key = key

        def cache_key(self):
            return dict(self._key)

    def test_path_stable_across_insertion_order(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        forward = self._Point(
            {"experiment_id": "E6", "seed": 1,
             "kwargs": {"duration": 1.0, "alpha": 0.2},
             "code_version": "v"}
        )
        backward = self._Point(
            {"code_version": "v",
             "kwargs": {"alpha": 0.2, "duration": 1.0},
             "seed": 1, "experiment_id": "E6"}
        )
        assert cache.path_for(forward) == cache.path_for(backward)
        assert cache.digest_for(forward) == cache.digest_for(backward)

    def test_spec_kwargs_order_irrelevant(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        a = MeasureSpec.create("measure_saturated", preset("short_hop"),
                               "lams", duration=1.0, start_time=0.0)
        b = MeasureSpec.create("measure_saturated", preset("short_hop"),
                               "lams", start_time=0.0, duration=1.0)
        assert cache.path_for(MeasurePoint(a, 3)) == cache.path_for(
            MeasurePoint(b, 3)
        )

    def test_distinct_code_version_distinct_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        base = {"experiment_id": "E6", "seed": 1, "kwargs": {}}
        current = self._Point({**base, "code_version": "1.0"})
        bumped = self._Point({**base, "code_version": "2.0"})
        assert cache.path_for(current) != cache.path_for(bumped)
        cache.put(current, {"x": 1})
        assert cache.get(bumped) is None  # never served across versions

    def test_v1_entry_read_and_migrated(self, tmp_path):
        import json
        import os

        # A pre-v2 cache: one <digest>.json file per point.
        probe = ResultCache(str(tmp_path))
        point = MeasurePoint(_spec(), 0)
        v1_path = probe.path_for(point)
        with open(v1_path, "w") as handle:
            json.dump({"key": point.cache_key(), "result": {"eta": 0.5}},
                      handle)
        # Transparent read-through, no migration needed.
        cache = ResultCache(str(tmp_path))
        assert cache.contains(point)
        assert cache.get(point) == {"eta": 0.5}
        assert len(cache) == 1
        # Migration absorbs the v1 file into a shard; the result
        # round-trips and the legacy file is gone.
        report = cache.migrate()
        assert report["v1_absorbed"] == 1
        assert report["entries"] == 1
        assert not os.path.exists(v1_path)
        assert cache.get(point) == {"eta": 0.5}
        cache.close()
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(point) == {"eta": 0.5}
        assert fresh.info()["v1_files"] == 0
        assert fresh.info()["shards"] == 1

    def test_migrate_compacts_shards(self, tmp_path):
        import os

        first = ResultCache(str(tmp_path))
        first.put(MeasurePoint(_spec(), 0), {"x": 1})
        first.close()
        second = ResultCache(str(tmp_path))
        second.put(MeasurePoint(_spec(), 1), {"x": 2})
        report = second.migrate()
        assert report["entries"] == 2
        assert report["shards_compacted"] == 2
        shards = [n for n in os.listdir(tmp_path) if n.startswith("shard-")]
        assert len(shards) == 1
        assert second.get(MeasurePoint(_spec(), 0)) == {"x": 1}


# -- sweep engine / stats ---------------------------------------------------


class TestRunSweep:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_sweep([], jobs=0)

    def test_progress_callback(self, tmp_path):
        spec = _spec()
        cache = ResultCache(str(tmp_path))
        seen = []
        points = [MeasurePoint(spec, s) for s in (0, 1)]
        run_sweep(points, jobs=2, cache=cache,
                  progress=lambda p, hit: seen.append((p.seed, hit)))
        assert seen == [(0, False), (1, False)]
        seen.clear()
        run_sweep(points, jobs=2, cache=ResultCache(str(tmp_path)),
                  progress=lambda p, hit: seen.append((p.seed, hit)))
        assert seen == [(0, True), (1, True)]

    def test_worker_stats_recorded(self):
        stats = Tracer()
        run_sweep([MeasurePoint(_spec(), s) for s in (0, 1)],
                  jobs=2, stats=stats)
        assert stats.counter("sweep.points").value == 2
        assert stats.counter("sweep.executed").value == 2
        worker_counters = [n for n in stats.counters
                           if n.startswith("sweep.worker.")]
        assert worker_counters
        assert stats.samples["sweep.task_seconds"].count == 2

    def test_progress_receives_results_in_order(self):
        spec = _spec()
        seen = []
        points = [MeasurePoint(spec, s) for s in (0, 1, 2)]
        run_sweep(points, jobs=2,
                  progress=lambda p, hit, result: seen.append((p.seed, result)))
        assert [seed for seed, _ in seen] == [0, 1, 2]
        for (seed, result), point in zip(seen, points):
            assert result == point.execute()

    def test_keep_results_false_returns_none(self):
        spec = _spec()
        seen = []
        points = [MeasurePoint(spec, s) for s in (0, 1, 2)]
        out = run_sweep(points, jobs=2, keep_results=False,
                        progress=lambda p, hit, result: seen.append(result))
        assert out is None
        assert len(seen) == 3
        assert seen[0] == points[0].execute()

    def test_explicit_chunksize_does_not_change_results(self):
        spec = _spec()
        points = [MeasurePoint(spec, s) for s in range(5)]
        serial = run_sweep(points)
        chunked = run_sweep(points, jobs=2, chunksize=3)
        assert chunked == serial


class TestResolveJobs:
    """Regression: ``jobs>1`` on a single-core host must degrade to
    serial execution instead of paying fork/IPC overhead for nothing."""

    def test_single_core_resolves_to_serial(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert resolve_jobs(8) == 1
        assert resolve_jobs(1) == 1

    def test_unknown_core_count_resolves_to_serial(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert resolve_jobs(4) == 1

    def test_multi_core_passes_through(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert resolve_jobs(4) == 4
        assert resolve_jobs(16) == 16  # deliberate oversubscription allowed

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_run_sweep_on_single_core_spawns_no_pool(self, monkeypatch):
        from repro.experiments import parallel as parallel_module

        monkeypatch.setattr("os.cpu_count", lambda: 1)

        def forbid_pool(*args, **kwargs):
            raise AssertionError("single-core sweep must not build a pool")

        monkeypatch.setattr(parallel_module, "SweepPool", forbid_pool)
        spec = _spec()
        points = [MeasurePoint(spec, s) for s in (0, 1)]
        assert run_sweep(points, jobs=4) == [p.execute() for p in points]


class TestChunksize:
    def test_explicit_wins(self):
        assert _resolve_chunksize(5, 100, 4) == 5

    def test_adaptive_targets_four_chunks_per_worker(self):
        assert _resolve_chunksize(0, 64, 4) == 4  # ceil(64 / 16)

    def test_adaptive_caps_at_32(self):
        assert _resolve_chunksize(0, 100_000, 4) == 32

    def test_adaptive_floors_at_1(self):
        assert _resolve_chunksize(0, 6, 2) == 1


class TestStartMethod:
    """The pool's start method is chosen explicitly, never left to the
    interpreter default (spawn-safety satellite)."""

    def test_resolved_method_is_available(self):
        import multiprocessing

        method = _resolve_start_method()
        assert method in multiprocessing.get_all_start_methods()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "fork")
        assert _resolve_start_method("spawn") == "spawn"

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert _resolve_start_method() == "spawn"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown start method"):
            _resolve_start_method("bogus")

    def test_pool_context_matches_resolution(self):
        context = _pool_context("spawn")
        assert context.get_start_method() == "spawn"

    def test_spawn_pool_matches_serial(self):
        # The expensive end-to-end guarantee: a spawn-started pool (the
        # portable fallback) produces bit-identical results.
        spec = _spec()
        seeds = replication_seeds(0, 2)
        serial = replicate_all(spec.measure(), ["efficiency"], seeds)
        with SweepPool(2, start_method="spawn") as pool:
            assert pool.start_method == "spawn"
            parallel = parallel_replicate_all(spec, ["efficiency"], seeds,
                                              pool=pool)
        assert parallel == serial


class TestSweepPool:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            SweepPool(0)

    def test_workers_persist_across_sweeps(self):
        spec = _spec()
        points = [MeasurePoint(spec, s) for s in (0, 1, 2)]
        with SweepPool(2) as pool:
            first = run_sweep(points, pool=pool)
            inner = pool._pool
            assert inner is not None
            second = run_sweep(points, pool=pool)
            assert pool._pool is inner  # same workers, no pool churn
        assert first == second == run_sweep(points)

    def test_cancel_recycles_lazily(self):
        pool = SweepPool(2)
        try:
            first = pool.pool()
            pool.cancel()
            assert pool.recycled == 1
            assert pool._pool is None
            second = pool.pool()
            assert second is not first
        finally:
            pool.close()

    def test_context_manager_closes(self):
        with SweepPool(2) as pool:
            pool.pool()
        assert pool._pool is None

    def test_sweepstop_cancels_shared_pool(self):
        spec = _spec()
        points = [MeasurePoint(spec, s) for s in range(4)]
        with SweepPool(2) as pool:
            def stop_after_first(point, from_cache):
                from repro.experiments.parallel import SweepStop

                raise SweepStop(point.label)

            results = run_sweep(points, pool=pool, progress=stop_after_first)
            assert pool.recycled == 1  # abandoned chunks were torn down
            assert results[0] is not None
            # The pool still works after the recycle.
            assert run_sweep(points[:2], pool=pool) == [
                p.execute() for p in points[:2]
            ]


class TestStreamingReplication:
    def test_streaming_bit_identical_to_batch(self):
        spec = _spec()
        seeds = replication_seeds(0, 4)
        batch = parallel_replicate_all(spec, METRICS, seeds, jobs=2)
        stream = parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                                        streaming=True)
        for metric in METRICS:
            assert stream[metric].count == batch[metric].count
            assert stream[metric].mean == batch[metric].mean
            assert stream[metric].stdev == batch[metric].stdev
            assert stream[metric].half_width == batch[metric].half_width

    def test_streaming_matches_serial_replicate(self):
        spec = _spec()
        seeds = replication_seeds(1, 3)
        serial = replicate(spec.measure(), "efficiency", seeds)
        stream = parallel_replicate(spec, "efficiency", seeds, jobs=2,
                                    streaming=True)
        assert stream.mean == serial.mean
        assert stream.stdev == serial.stdev

    def test_streaming_uses_cache(self, tmp_path):
        spec = _spec()
        seeds = replication_seeds(0, 3)
        cache = ResultCache(str(tmp_path))
        cold = parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                                      cache=cache, streaming=True)
        stats = Tracer()
        warm = parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                                      cache=ResultCache(str(tmp_path)),
                                      stats=stats, streaming=True)
        assert stats.counter("sweep.executed").value == 0
        assert stats.counter("sweep.cache_hits").value == len(seeds)
        for metric in METRICS:
            assert warm[metric].mean == cold[metric].mean
            assert warm[metric].stdev == cold[metric].stdev


# -- registry fan-out -------------------------------------------------------


class TestRegistryFanout:
    def test_round_trip_matches_direct_run(self, tmp_path):
        out = run_experiments_parallel(["E1", "E3"], jobs=2,
                                       cache=ResultCache(str(tmp_path)))
        assert set(out) == {"E1", "E3"}
        for eid in ("E1", "E3"):
            direct = run_experiment(eid)
            assert isinstance(out[eid], ExperimentResult)
            assert out[eid].title == direct.title
            assert out[eid].notes == direct.notes
            assert len(out[eid].rows) == len(direct.rows)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            ExperimentPoint.create("E999")

    def test_seed_default_resolved_from_signature(self):
        # E2-sim registers seed=2; model-only E1 defaults to 0.
        assert ExperimentPoint.create("E2-sim").seed == 2
        assert ExperimentPoint.create("E1").seed == 0

    def test_model_experiments_accept_seed(self):
        # Satellite of the same PR: every registry entry takes `seed`.
        result = run_experiment("E1", seed=123)
        assert result.rows


class TestNanGuard:
    def test_parallel_replicate_raises_like_serial(self):
        # measure_failure_recovery's dict has non-float fields; force a
        # NaN through a metric that is NaN for an impossible duration.
        spec = MeasureSpec.create(
            "measure_saturated", preset("short_hop"), "lams", duration=DURATION
        )
        seeds = replication_seeds(0, 2)
        results = parallel_replicate_all(spec, ["sendbuf_avg"], seeds, jobs=2)
        # sendbuf_avg exists for lams; guard only fires on real NaNs, so
        # this documents that clean metrics never trip it.
        assert all(v == v for v in results["sendbuf_avg"].samples)

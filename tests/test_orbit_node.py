"""Tests for the LEO geometry model and the node container."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.simulator.engine import Simulator
from repro.simulator.node import Node, PacketSink
from repro.simulator.orbit import (
    EARTH_RADIUS_KM,
    IsolatedLinkGeometry,
    Satellite,
    link_distance_km,
    rtt_statistics,
    visibility_windows,
)


class TestSatellite:
    def test_orbit_radius(self):
        sat = Satellite("s", altitude_km=1000.0)
        assert sat.orbit_radius_km == EARTH_RADIUS_KM + 1000.0

    def test_period_near_105_minutes_at_1000km(self):
        sat = Satellite("s", altitude_km=1000.0)
        assert sat.period_s == pytest.approx(105 * 60, rel=0.02)

    def test_position_stays_on_orbit_sphere(self):
        sat = Satellite("s", altitude_km=1000.0, inclination_deg=63.4, raan_deg=40.0)
        times = np.linspace(0, sat.period_s, 50)
        radii = np.linalg.norm(sat.position(times), axis=-1)
        assert np.allclose(radii, sat.orbit_radius_km, rtol=1e-9)

    def test_period_closes_the_orbit(self):
        sat = Satellite("s", altitude_km=800.0, inclination_deg=50.0)
        start = sat.position(0.0)
        end = sat.position(sat.period_s)
        assert np.allclose(start, end, atol=1e-6)

    def test_phase_offsets_position(self):
        a = Satellite("a", phase_deg=0.0)
        b = Satellite("b", phase_deg=180.0)
        # Same plane, opposite sides: separation is the orbit diameter.
        assert link_distance_km(a, b, 0.0) == pytest.approx(2 * a.orbit_radius_km)

    def test_invalid_altitude(self):
        with pytest.raises(ValueError):
            Satellite("bad", altitude_km=0.0)


class TestGeometry:
    def test_distance_symmetric(self):
        a = Satellite("a", raan_deg=0.0)
        b = Satellite("b", raan_deg=30.0, phase_deg=10.0)
        assert link_distance_km(a, b, 100.0) == pytest.approx(
            float(link_distance_km(b, a, 100.0))
        )

    def test_coplanar_neighbors_fixed_distance(self):
        """Two satellites in the same plane hold constant separation."""
        a = Satellite("a", phase_deg=0.0)
        b = Satellite("b", phase_deg=30.0)
        times = np.linspace(0, 5000, 100)
        distances = link_distance_km(a, b, times)
        assert np.allclose(distances, distances[0], rtol=1e-9)
        expected = 2 * a.orbit_radius_km * math.sin(math.radians(15))
        assert distances[0] == pytest.approx(expected)

    def test_cross_plane_distance_varies(self):
        a = Satellite("a", raan_deg=0.0)
        b = Satellite("b", raan_deg=60.0)
        times = np.linspace(0, a.period_s, 200)
        distances = link_distance_km(a, b, times)
        assert distances.max() > 1.5 * distances.min()

    def test_opposite_satellites_occluded(self):
        a = Satellite("a", phase_deg=0.0)
        b = Satellite("b", phase_deg=180.0)
        windows = visibility_windows(a, b, 0.0, 600.0, max_range_km=50_000.0)
        assert windows == []  # Earth sits exactly between them

    def test_close_neighbors_always_visible(self):
        a = Satellite("a", phase_deg=0.0)
        b = Satellite("b", phase_deg=20.0)
        windows = visibility_windows(a, b, 0.0, 600.0, max_range_km=10_000.0)
        assert len(windows) == 1
        assert windows[0].duration == pytest.approx(600.0, abs=2.0)

    def test_range_limit_creates_finite_windows(self):
        """Cross-plane pairs drift in and out of laser range (short link
        lifetimes — the paper's defining LAMS property)."""
        a = Satellite("a", raan_deg=0.0, inclination_deg=60)
        b = Satellite("b", raan_deg=30.0, inclination_deg=60, phase_deg=0.0)
        period = a.period_s
        times = np.linspace(0, 2 * period, 2000)
        distances = link_distance_km(a, b, times)
        # Pick a range threshold strictly between the distance extremes so
        # the pair must drift in and out of range.
        threshold = 0.5 * (distances.min() + distances.max())
        windows = visibility_windows(
            a, b, 0.0, 2 * period, max_range_km=float(threshold), step_s=5.0
        )
        assert windows, "expected at least one visibility window"
        assert all(w.duration < 2 * period for w in windows)

    def test_rtt_statistics_fields(self):
        a = Satellite("a", raan_deg=0.0)
        b = Satellite("b", raan_deg=30.0, phase_deg=5.0)
        stats = rtt_statistics(a, b, 0.0, 1000.0, step_s=10.0)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["midrange"] == pytest.approx((stats["min"] + stats["max"]) / 2)
        assert stats["alpha_min"] == pytest.approx(stats["max"] - stats["midrange"])
        assert stats["variance"] >= 0.0

    def test_isolated_link_geometry_delay_fn(self):
        a = Satellite("a", phase_deg=0.0)
        b = Satellite("b", phase_deg=30.0)
        geometry = IsolatedLinkGeometry(a, b)
        delay = geometry.delay_fn()
        # ~3350 km separation -> ~11 ms one way.
        assert 0.005 < delay(0.0) < 0.05
        assert delay(0.0) == pytest.approx(geometry.one_way_delay(0.0))

    def test_visibility_requires_valid_interval(self):
        a, b = Satellite("a"), Satellite("b", phase_deg=10)
        with pytest.raises(ValueError):
            visibility_windows(a, b, 10.0, 10.0)


class TestNode:
    def test_packet_sink_records(self):
        sim = Simulator()
        sink = PacketSink(sim)
        node = Node(sim, "sat1", network_layer=sink)
        sim.schedule(2.0, node.deliver_up, "payload", "link0")
        sim.run()
        assert sink.packets == ["payload"]
        assert sink.delivery_times == [2.0]

    def test_endpoint_registration_and_send(self):
        sim = Simulator()
        node = Node(sim, "sat1")
        accepted = []

        class FakeEndpoint:
            def accept(self, packet):
                accepted.append(packet)
                return True

        node.attach_endpoint("link0", FakeEndpoint())
        assert node.send("data", via_link="link0")
        assert accepted == ["data"]

    def test_duplicate_endpoint_rejected(self):
        sim = Simulator()
        node = Node(sim, "sat1")

        class FakeEndpoint:
            def accept(self, packet):
                return True

        node.attach_endpoint("link0", FakeEndpoint())
        with pytest.raises(ValueError):
            node.attach_endpoint("link0", FakeEndpoint())

    def test_unknown_link_raises(self):
        sim = Simulator()
        node = Node(sim, "sat1")
        with pytest.raises(KeyError):
            node.send("data", via_link="nope")

    def test_link_failure_reported(self):
        sim = Simulator()
        sink = PacketSink(sim)
        node = Node(sim, "sat1", network_layer=sink)
        node.report_link_failure("link0")
        assert sink.failures == ["link0"]

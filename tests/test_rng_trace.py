"""Tests for RNG streams and the tracer/statistics module."""

from __future__ import annotations

import math

import pytest

from repro.simulator.rng import StreamRegistry, derive_seed
from repro.simulator.trace import SampleStat, TimeWeightedStat, Tracer


class TestStreamRegistry:
    def test_same_name_same_stream_object(self):
        streams = StreamRegistry(seed=5)
        assert streams.get("x") is streams.get("x")

    def test_different_names_independent(self):
        streams = StreamRegistry(seed=5)
        a = streams.get("a").random(100)
        b = streams.get("b").random(100)
        assert list(a) != list(b)

    def test_reproducible_across_registries(self):
        first = StreamRegistry(seed=9).get("chan").random(10)
        second = StreamRegistry(seed=9).get("chan").random(10)
        assert list(first) == list(second)

    def test_different_seeds_differ(self):
        first = StreamRegistry(seed=1).get("chan").random(10)
        second = StreamRegistry(seed=2).get("chan").random(10)
        assert list(first) != list(second)

    def test_consumption_isolation(self):
        """Draining one stream must not perturb another (CRN discipline)."""
        registry_a = StreamRegistry(seed=7)
        registry_a.get("noise").random(1000)  # heavy consumption
        after_heavy = registry_a.get("signal").random(5)
        registry_b = StreamRegistry(seed=7)
        fresh = registry_b.get("signal").random(5)
        assert list(after_heavy) == list(fresh)

    def test_reset_recreates_streams(self):
        streams = StreamRegistry(seed=3)
        first = streams.get("s").random(4)
        streams.reset()
        again = streams.get("s").random(4)
        assert list(first) == list(again)

    def test_names_sorted(self):
        streams = StreamRegistry()
        streams.get("b")
        streams.get("a")
        assert streams.names() == ["a", "b"]

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert 0 <= derive_seed(123456, "anything") < 2**32


class TestSampleStat:
    def test_mean_and_extremes(self):
        stat = SampleStat("s")
        for value in (1.0, 2.0, 3.0, 4.0):
            stat.add(value)
        assert stat.mean == pytest.approx(2.5)
        assert stat.minimum == 1.0 and stat.maximum == 4.0

    def test_variance_matches_textbook(self):
        stat = SampleStat("s")
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stat.add(value)
        assert stat.variance == pytest.approx(32.0 / 7.0)
        assert stat.stdev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_empty_stat_mean_is_nan_but_spread_is_zero(self):
        # Mean of nothing is undefined; spread of fewer than two samples
        # is *defined* as zero so confidence intervals degrade gracefully
        # instead of propagating NaN (or dividing by n-1 = 0).
        stat = SampleStat("s")
        assert math.isnan(stat.mean)
        assert stat.variance == 0.0
        assert stat.stdev == 0.0

    def test_single_sample_has_zero_spread(self):
        stat = SampleStat("s")
        stat.add(42.0)
        assert stat.mean == 42.0
        assert stat.variance == 0.0
        assert stat.stdev == 0.0

    def test_two_samples_spread_becomes_live(self):
        stat = SampleStat("s")
        stat.add(1.0)
        stat.add(3.0)
        assert stat.variance == pytest.approx(2.0)
        assert stat.stdev == pytest.approx(math.sqrt(2.0))


class TestTimeWeightedStat:
    def test_constant_signal(self):
        stat = TimeWeightedStat("q", start_time=0.0, level=5.0)
        assert stat.mean(10.0) == pytest.approx(5.0)

    def test_step_signal_average(self):
        stat = TimeWeightedStat("q")
        stat.update(0.0, 0.0)
        stat.update(5.0, 10.0)  # level 0 for [0,5), 10 for [5,10)
        assert stat.mean(10.0) == pytest.approx(5.0)
        assert stat.maximum == 10.0

    def test_time_cannot_go_backwards(self):
        stat = TimeWeightedStat("q")
        stat.update(5.0, 1.0)
        with pytest.raises(ValueError):
            stat.update(4.0, 2.0)

    def test_backwards_update_leaves_state_untouched(self):
        # The rejection must happen before any mutation: a failed update
        # must not corrupt the accumulated area, level, or clock.
        stat = TimeWeightedStat("q")
        stat.update(0.0, 2.0)
        stat.update(4.0, 6.0)
        with pytest.raises(ValueError):
            stat.update(3.0, 100.0)
        assert stat.level == 6.0
        assert stat.maximum == 6.0
        assert stat.mean(8.0) == pytest.approx((2.0 * 4.0 + 6.0 * 4.0) / 8.0)

    def test_equal_time_update_is_allowed(self):
        # Two level changes at the same instant are legal (zero-width
        # segment); only strictly backwards time is an error.
        stat = TimeWeightedStat("q")
        stat.update(2.0, 1.0)
        stat.update(2.0, 5.0)
        assert stat.level == 5.0
        assert stat.mean(4.0) == pytest.approx(5.0 * 2.0 / 4.0)

    def test_query_before_last_update_rejected(self):
        stat = TimeWeightedStat("q")
        stat.update(5.0, 1.0)
        with pytest.raises(ValueError):
            stat.mean(4.0)


class TestTracer:
    def test_timeline_disabled_by_default(self):
        tracer = Tracer()
        tracer.emit(1.0, "src", "evt")
        assert tracer.records == []

    def test_timeline_records_when_enabled(self):
        tracer = Tracer(record_timeline=True)
        tracer.emit(1.0, "src", "evt", detail=7)
        assert len(tracer.records) == 1
        assert tracer.records[0].detail == {"detail": 7}

    def test_timeline_filtering(self):
        tracer = Tracer(record_timeline=True)
        tracer.emit(1.0, "a", "x")
        tracer.emit(2.0, "b", "x")
        tracer.emit(3.0, "a", "y")
        assert len(tracer.timeline(source="a")) == 2
        assert len(tracer.timeline(event="x")) == 2
        assert len(tracer.timeline(source="a", event="y")) == 1

    def test_listener_receives_records_even_without_timeline(self):
        tracer = Tracer()
        seen = []
        tracer.listeners.append(seen.append)
        tracer.emit(1.0, "src", "evt")
        assert len(seen) == 1 and tracer.records == []

    def test_counters(self):
        tracer = Tracer()
        tracer.count("frames")
        tracer.count("frames", 4)
        assert tracer.value("frames") == 5
        assert tracer.value("never") == 0

    def test_summary_includes_all_metric_kinds(self):
        tracer = Tracer()
        tracer.count("c", 3)
        tracer.sample("s", 2.0)
        tracer.level("l", 0.0, 1.0)
        tracer.level("l", 2.0, 3.0)
        summary = tracer.summary()
        assert summary["c"] == 3
        assert summary["s.mean"] == 2.0
        assert summary["s.count"] == 1
        assert "l.avg" in summary and summary["l.max"] == 3.0

    def test_format_timeline_readable(self):
        tracer = Tracer(record_timeline=True)
        tracer.emit(1.5, "node", "sent", seq=3)
        text = tracer.format_timeline()
        assert "node" in text and "sent" in text and "seq=3" in text


class TestTracerFastPath:
    """The precomputed ``active`` flag must track timeline + listeners."""

    def test_inactive_by_default(self):
        assert Tracer().active is False

    def test_timeline_flag_activates(self):
        assert Tracer(record_timeline=True).active is True
        tracer = Tracer()
        tracer.record_timeline = True
        assert tracer.active is True
        tracer.record_timeline = False
        assert tracer.active is False

    def test_listener_mutations_keep_flag_honest(self):
        tracer = Tracer()
        listener = lambda record: None
        tracer.listeners.append(listener)
        assert tracer.active is True
        tracer.listeners.remove(listener)
        assert tracer.active is False
        tracer.listeners.extend([listener, listener])
        assert tracer.active is True
        tracer.listeners.pop()
        assert tracer.active is True  # one listener left
        tracer.listeners.clear()
        assert tracer.active is False
        tracer.listeners += [listener]
        assert tracer.active is True
        del tracer.listeners[0]
        assert tracer.active is False

    def test_mid_run_listener_sees_subsequent_emits(self):
        tracer = Tracer()
        seen = []
        tracer.emit(0.0, "src", "before")  # dropped: fast path
        tracer.listeners.append(seen.append)
        tracer.emit(1.0, "src", "after")
        assert [record.event for record in seen] == ["after"]

    def test_counters_and_stats_live_while_inactive(self):
        # Only the timeline/listener path is gated; metrics never are.
        tracer = Tracer()
        tracer.count("c")
        tracer.sample("s", 1.0)
        tracer.level("l", 0.0, 2.0)
        assert tracer.value("c") == 1
        assert tracer.samples["s"].count == 1
        assert tracer.levels["l"].level == 2.0

    def test_stat_handles_are_cached_objects(self):
        tracer = Tracer()
        assert tracer.sample_stat("s") is tracer.sample_stat("s")
        assert tracer.level_stat("l") is tracer.level_stat("l")

"""Session-manager behaviour under mid-pass faults.

A declared link failure during an active pass must tear the session
down early (reason="link_failure"), reclaim the sender's unresolved
frames into the backlog, and let the next pass finish the job — the
zero-loss property of the session layer extended across the fault
layer.
"""

from __future__ import annotations

import pytest

from repro.core import LamsDlcConfig
from repro.faults import FaultInjector, FaultPlan
from repro.hdlc import HdlcConfig
from repro.session import LinkSessionManager, PassSchedule
from repro.session.factories import hdlc_session_factory, lams_session_factory
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    Simulator,
    StreamRegistry,
)
from repro.simulator.trace import Tracer


def make_link(sim, tracer, seed=1):
    return FullDuplexLink(
        sim, bit_rate=100e6, propagation_delay=0.010, name="x",
        iframe_errors=BernoulliChannel(1e-7),
        streams=StreamRegistry(seed=seed), tracer=tracer,
    )


def run_faulted_session(factory, config, plan, n=2000, seed=2,
                        pass_duration=1.0, count=2, until=3.5):
    sim = Simulator()
    tracer = Tracer(record_timeline=True)
    link = make_link(sim, tracer, seed=seed)
    schedule = PassSchedule.periodic(
        first_start=0.1, duration=pass_duration, gap=0.3, count=count,
    )
    delivered = []
    manager = LinkSessionManager(
        sim, link, schedule, factory(config),
        init_time=0.05, deliver=delivered.append, tracer=tracer,
    )
    FaultInjector(sim, link, plan, tracer=tracer)
    for i in range(n):
        manager.send(("pkt", i))
    sim.run(until=until)
    return manager, delivered, tracer


LAMS_CONFIG_KW = dict(checkpoint_interval=0.005, cumulation_depth=3)


class TestMidPassFailure:
    def run_one(self, n=2000):
        # Outage [0.3, 0.8) inside pass 1 [0.1, 1.1); with C_depth=3 and
        # W_cp=5ms the failure budget is tens of ms, far below 500 ms,
        # so the sender declares the link failed mid-pass.
        plan = FaultPlan.single_outage(start=0.3, duration=0.5)
        return run_faulted_session(
            lams_session_factory, LamsDlcConfig(**LAMS_CONFIG_KW), plan, n=n,
        )

    def test_failure_tears_session_down_early(self):
        manager, delivered, tracer = self.run_one()
        assert manager.failures == 1
        assert manager.session_history[0]["reason"] == "link_failure"
        [failure] = tracer.timeline("session", "session_failure")
        assert 0.3 < failure.time < 0.8  # well before the pass boundary

    def test_backlog_survives_declared_failure(self):
        manager, delivered, tracer = self.run_one()
        assert manager.session_history[0]["reclaimed"] > 0
        assert manager.carried_over > 0
        # Pass 2 ran and drained the carried-over backlog.
        assert manager.passes_run == 2
        assert manager.session_history[1]["reason"] == "pass_end"

    def test_zero_loss_across_failure(self):
        n = 2000
        manager, delivered, tracer = self.run_one(n=n)
        ids = {p[1] for p in delivered}
        # Nothing vanished: every payload was delivered or still queued.
        assert len(ids) + manager.backlog >= n
        # The fault cost duplicates at most, never loss.
        assert ids >= set(range(500))

    def test_session_down_reason_in_trace(self):
        manager, delivered, tracer = self.run_one()
        downs = tracer.timeline("session", "session_down")
        assert [d.detail["reason"] for d in downs] == ["link_failure", "pass_end"]


class TestRideOutFault:
    def test_short_outage_recovers_without_teardown(self):
        """An outage inside the failure budget never reaches the manager."""
        # C_depth=8 → 40 ms watchdog; a 20 ms cut ends before even the
        # detection bound, so enforced recovery (or plain checkpoints)
        # resolves it with the session still up.
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=8)
        plan = FaultPlan.single_outage(start=0.3, duration=0.02)
        manager, delivered, tracer = run_faulted_session(
            lams_session_factory, config, plan, n=1500,
        )
        assert manager.failures == 0
        assert all(h["reason"] == "pass_end" for h in manager.session_history)
        ids = {p[1] for p in delivered}
        assert len(ids) + manager.backlog >= 1500

    def test_hdlc_sessions_never_declare_failure(self):
        """A protocol without a failure path just stalls through the cut."""
        config = HdlcConfig(window_size=32, sequence_bits=7, timeout=0.06)
        plan = FaultPlan.single_outage(start=0.3, duration=0.1)
        manager, delivered, tracer = run_faulted_session(
            hdlc_session_factory, config, plan, n=1000,
        )
        assert manager.failures == 0
        ids = {p[1] for p in delivered}
        assert len(ids) + manager.backlog >= 1000


class TestInjectorManagerInterplay:
    def test_fault_end_between_passes_leaves_link_down(self):
        """The injector never forces up a link the manager downed.

        An outage spanning a pass boundary ends in the gap; the link
        must stay down until the next pass activates.
        """
        sim = Simulator()
        tracer = Tracer(record_timeline=True)
        link = make_link(sim, tracer)
        schedule = PassSchedule.periodic(
            first_start=0.1, duration=0.4, gap=0.6, count=2,
        )
        manager = LinkSessionManager(
            sim, link, schedule, lams_session_factory(
                LamsDlcConfig(**LAMS_CONFIG_KW)
            ),
            init_time=0.05, deliver=lambda p: None, tracer=tracer,
        )
        # Fault starts in the gap (link already down) and ends there too.
        FaultInjector(
            sim, link,
            FaultPlan.single_outage(start=0.6, duration=0.2), tracer=tracer,
        )
        states = {}
        sim.schedule_at(0.9, lambda: states.update(gap=link.forward.is_up))
        sim.schedule_at(1.2, lambda: states.update(pass2=link.forward.is_up))
        for i in range(50):
            manager.send(("pkt", i))
        sim.run(until=2.0)
        assert states["gap"] is False   # injector did not resurrect the link
        assert states["pass2"] is True  # second pass activated normally
        assert manager.failures == 0


class TestPassScheduleValidation:
    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration must be positive"):
            PassSchedule.periodic(first_start=0.0, duration=0.0, gap=1.0, count=3)
        with pytest.raises(ValueError, match="duration must be positive"):
            PassSchedule.periodic(first_start=0.0, duration=-2.0, gap=1.0, count=3)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError, match="gap cannot be negative"):
            PassSchedule.periodic(first_start=0.0, duration=1.0, gap=-0.1, count=3)

    def test_zero_gap_back_to_back_passes_allowed(self):
        schedule = PassSchedule.periodic(
            first_start=0.0, duration=1.0, gap=0.0, count=3,
        )
        assert len(schedule) == 3
        assert schedule.total_link_time == pytest.approx(3.0)

    def test_count_still_validated(self):
        with pytest.raises(ValueError, match="at least one pass"):
            PassSchedule.periodic(first_start=0.0, duration=1.0, gap=1.0, count=0)


class _ScriptedEndpoint:
    """Test double: accepts up to *capacity* payloads; the last
    *unresolved_tail* of them are still held at teardown."""

    def __init__(self, capacity, unresolved_tail=0):
        self.capacity = capacity
        self.unresolved_tail = unresolved_tail
        self.accepted = []
        self.sender = self

    def held_payloads(self):
        if not self.unresolved_tail:
            return []
        return list(self.accepted[-self.unresolved_tail:])

    def accept(self, payload):
        if len(self.accepted) >= self.capacity:
            return False
        self.accepted.append(payload)
        return True

    def stop(self):
        pass


class TestBacklogReplayOrder:
    """Regression: payloads reclaimed from a failed pass must be re-sent
    *before* queued traffic, in their original order (the deque
    ``extendleft(reversed(...))`` dance in ``_teardown``)."""

    def run_scripted(self):
        sim = Simulator()
        tracer = Tracer(record_timeline=True)
        link = make_link(sim, tracer)
        schedule = PassSchedule.periodic(
            first_start=0.0, duration=1.0, gap=0.5, count=2,
        )
        endpoints = []

        def factory(sim_, link_, deliver, remaining, on_failure=None):
            first = not endpoints
            endpoint = _ScriptedEndpoint(
                capacity=6 if first else 100,
                unresolved_tail=4 if first else 0,
            )
            endpoints.append(endpoint)
            if first and on_failure is not None:
                # Declare the link failed mid-pass, as the LAMS sender
                # would after an exhausted enforced recovery.
                sim_.schedule(0.5, on_failure)
            return endpoint, endpoint

        manager = LinkSessionManager(
            sim, link, schedule, factory,
            init_time=0.0, deliver=lambda p: None, tracer=tracer,
        )
        for i in range(10):
            manager.send(("pkt", i))
        sim.run(until=3.0)
        return manager, endpoints, tracer

    def test_reclaimed_replayed_first_in_original_order(self):
        manager, endpoints, tracer = self.run_scripted()
        assert len(endpoints) == 2
        # Pass 1 accepted pkt0..pkt5 and held pkt2..pkt5 unresolved at
        # the declared failure; pass 2 must see the reclaimed frames
        # first, in order, then the never-sent backlog pkt6..pkt9.
        assert endpoints[0].accepted == [("pkt", i) for i in range(6)]
        assert endpoints[1].accepted == [("pkt", i) for i in (2, 3, 4, 5, 6, 7, 8, 9)]
        assert manager.backlog == 0

    def test_failure_teardown_reported_and_traced(self):
        manager, endpoints, tracer = self.run_scripted()
        assert manager.failures == 1
        assert manager.session_history[0]["reason"] == "link_failure"
        assert manager.session_history[0]["reclaimed"] == 4
        assert manager.carried_over == 4
        [event] = tracer.timeline("session", "backlog_reclaimed")
        assert event.detail["count"] == 4
        assert event.detail["backlog"] == 8  # 4 reclaimed + 4 never sent

    def test_real_protocol_failure_pass_loses_nothing(self):
        """End-to-end flavor: across a declared-failure LAMS pass every
        queued payload is either delivered or still in the backlog."""
        plan = FaultPlan.single_outage(start=0.3, duration=0.5)
        manager, delivered, _ = run_faulted_session(
            lams_session_factory, LamsDlcConfig(**LAMS_CONFIG_KW), plan, n=800,
        )
        assert manager.failures == 1
        ids = sorted({p[1] for p in delivered})
        assert len(ids) + manager.backlog >= 800

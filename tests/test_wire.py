"""Tests for the bit-level wire format (encode/decode + CRC detection)."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frames import CheckpointFrame, IFrame, RequestNakFrame
from repro.core.wire import (
    FRAME_TYPE_CHECKPOINT,
    FRAME_TYPE_IFRAME,
    WireFormatError,
    decode_checkpoint,
    decode_frame,
    decode_iframe,
    decode_request_nak,
    encode_checkpoint,
    encode_frame,
    encode_iframe,
    encode_request_nak,
)


def make_iframe(seq=7, index=42, payload_bits=64) -> IFrame:
    return IFrame(seq=seq, payload=None, size_bits=payload_bits, transmit_index=index)


class TestIFrameWire:
    def test_roundtrip(self):
        frame = make_iframe()
        data = encode_iframe(frame, b"hello world")
        decoded, payload, origin = decode_iframe(data)
        assert decoded.seq == frame.seq
        assert decoded.transmit_index == frame.transmit_index
        assert payload == b"hello world"
        assert origin == frame.transmit_index

    def test_origin_carried(self):
        frame = make_iframe(index=100)
        data = encode_iframe(frame, b"x", origin=55)
        _, _, origin = decode_iframe(data)
        assert origin == 55

    def test_size_bits_reflects_wire_length(self):
        data = encode_iframe(make_iframe(), b"abc")
        decoded, _, _ = decode_iframe(data)
        assert decoded.size_bits == 8 * len(data)

    def test_corruption_detected_everywhere(self):
        data = bytearray(encode_iframe(make_iframe(), b"payload"))
        for index in range(len(data)):
            corrupted = bytearray(data)
            corrupted[index] ^= 0x40
            with pytest.raises(WireFormatError):
                decode_iframe(bytes(corrupted))

    def test_oversize_fields_rejected(self):
        with pytest.raises(WireFormatError):
            encode_iframe(make_iframe(seq=1 << 16), b"")
        with pytest.raises(WireFormatError):
            encode_iframe(make_iframe(), b"x" * (1 << 16))

    @given(
        seq=st.integers(min_value=0, max_value=(1 << 16) - 1),
        index=st.integers(min_value=0, max_value=(1 << 32) - 1),
        payload=st.binary(max_size=512),
    )
    def test_roundtrip_property(self, seq, index, payload):
        frame = IFrame(seq=seq, payload=None, size_bits=8, transmit_index=index)
        decoded, got_payload, origin = decode_iframe(encode_iframe(frame, payload))
        assert (decoded.seq, decoded.transmit_index, got_payload) == (seq, index, payload)


class TestCheckpointWire:
    def make(self, **kwargs) -> CheckpointFrame:
        defaults = dict(cp_index=3, issue_time=1.5, naks=(1, 2, 9),
                        frontier=77, enforced=True, stop_go=True)
        defaults.update(kwargs)
        return CheckpointFrame(**defaults)

    def test_roundtrip_full(self):
        frame = self.make()
        decoded = decode_checkpoint(encode_checkpoint(frame))
        assert decoded.cp_index == frame.cp_index
        assert decoded.issue_time == frame.issue_time
        assert decoded.naks == frame.naks
        assert decoded.frontier == frame.frontier
        assert decoded.enforced and decoded.stop_go

    def test_roundtrip_minimal(self):
        frame = self.make(naks=(), frontier=None, enforced=False, stop_go=False)
        decoded = decode_checkpoint(encode_checkpoint(frame))
        assert decoded.naks == ()
        assert decoded.frontier is None
        assert not decoded.enforced and not decoded.stop_go

    def test_corruption_detected(self):
        data = bytearray(encode_checkpoint(self.make()))
        data[5] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_checkpoint(bytes(data))

    @given(
        cp_index=st.integers(min_value=0, max_value=(1 << 32) - 1),
        issue_time=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        naks=st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            max_size=50, unique=True,
        ),
        stop_go=st.booleans(),
        enforced=st.booleans(),
    )
    def test_roundtrip_property(self, cp_index, issue_time, naks, stop_go, enforced):
        frame = CheckpointFrame(
            cp_index=cp_index, issue_time=issue_time, naks=tuple(naks),
            frontier=None, enforced=enforced, stop_go=stop_go,
        )
        decoded = decode_checkpoint(encode_checkpoint(frame))
        assert decoded.cp_index == cp_index
        assert decoded.issue_time == issue_time
        assert decoded.naks == tuple(naks)
        assert decoded.stop_go == stop_go and decoded.enforced == enforced


class TestRequestNakWire:
    def test_roundtrip(self):
        decoded = decode_request_nak(encode_request_nak(RequestNakFrame(request_time=2.25)))
        assert decoded.request_time == 2.25

    def test_corruption_detected(self):
        data = bytearray(encode_request_nak(RequestNakFrame(request_time=2.25)))
        data[3] ^= 0x01
        with pytest.raises(WireFormatError):
            decode_request_nak(bytes(data))


class TestDispatch:
    def test_encode_decode_any(self):
        frames = [
            make_iframe(),
            CheckpointFrame(cp_index=0, issue_time=0.0),
            RequestNakFrame(request_time=0.0),
        ]
        for frame in frames:
            decoded = decode_frame(encode_frame(frame, payload=b"zz"))
            assert type(decoded) is type(frame)

    def test_unknown_type_rejected(self):
        with pytest.raises(WireFormatError):
            decode_frame(b"\xff\x00\x00")
        with pytest.raises(WireFormatError):
            decode_frame(b"")

    def test_wrong_type_byte_in_typed_decoder(self):
        data = encode_checkpoint(CheckpointFrame(cp_index=0, issue_time=0.0))
        with pytest.raises(WireFormatError):
            decode_iframe(data)

    def test_unencodable_type(self):
        with pytest.raises(TypeError):
            encode_frame("not a frame")  # type: ignore[arg-type]


class TestDecoderFuzzing:
    """decode_frame must reject arbitrary octets with WireFormatError only.

    This is the paper's detectable-error contract at the byte level: no
    input, however mangled, may crash a decoder or leak any exception
    other than :class:`WireFormatError`.
    """

    @given(data=st.binary(max_size=256))
    @settings(max_examples=500)
    def test_arbitrary_bytes_never_leak_other_exceptions(self, data):
        try:
            decode_frame(data)
        except WireFormatError:
            pass

    @given(
        payload=st.binary(max_size=64),
        position=st.integers(min_value=0, max_value=10_000),
        mask=st.integers(min_value=1, max_value=255),
    )
    def test_mutated_valid_frames_never_leak(self, payload, position, mask):
        encoded = bytearray(encode_iframe(make_iframe(), payload))
        encoded[position % len(encoded)] ^= mask
        try:
            decode_frame(bytes(encoded))
        except WireFormatError:
            pass

    @given(cut=st.integers(min_value=0, max_value=64))
    def test_truncations_never_leak(self, cut):
        encoded = encode_checkpoint(
            CheckpointFrame(cp_index=9, issue_time=0.5, naks=(1, 4), frontier=3)
        )
        try:
            decode_frame(encoded[: min(cut, len(encoded))])
        except WireFormatError:
            pass

    def test_crc_valid_duplicate_naks_raise_wire_error(self):
        """A CRC-passing body with a duplicate NAK entry must surface as
        WireFormatError, not as the frame constructor's plain ValueError."""
        from repro.fec.crc import append_crc16

        body = struct.pack(">BBId", FRAME_TYPE_CHECKPOINT, 0, 1, 0.0)
        body += struct.pack(">HHH", 2, 5, 5)  # nak_count=2, naks=(5, 5)
        crafted = append_crc16(body)
        with pytest.raises(WireFormatError):
            decode_frame(crafted)
        with pytest.raises(WireFormatError):
            decode_checkpoint(crafted)

    def test_non_bytes_input_raises_wire_error(self):
        for bad in (None, 17, "abc", [1, 2, 3], 4.2):
            with pytest.raises(WireFormatError):
                decode_frame(bad)  # type: ignore[arg-type]

    def test_bytes_like_inputs_accepted(self):
        encoded = encode_request_nak(RequestNakFrame(request_time=1.0))
        for view in (bytearray(encoded), memoryview(encoded)):
            assert decode_frame(view).request_time == 1.0


class TestOriginFidelity:
    def test_frame_origin_field_encoded_by_default(self):
        """A renumbered retransmission's incarnation id survives the wire."""
        frame = IFrame(seq=7, payload=None, size_bits=8, transmit_index=7, origin=2)
        decoded, _, origin = decode_iframe(encode_iframe(frame, b"x"))
        assert origin == 2
        assert decoded.origin == 2
        assert decoded.effective_origin == 2

    def test_first_incarnation_roundtrip(self):
        frame = IFrame(seq=3, payload=None, size_bits=8, transmit_index=3)
        decoded, _, origin = decode_iframe(encode_iframe(frame, b"x"))
        assert origin == 3
        assert decoded.effective_origin == 3

"""Tests for workload generators, scenarios, and the experiment harness."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    REGISTRY,
    experiment_ids,
    render_series,
    render_table,
    run_experiment,
)
from repro.experiments.reporting import format_value
from repro.experiments.runner import (
    measure_batch_transfer,
    measure_constant_rate,
    measure_failure_recovery,
    measure_saturated,
)
from repro.simulator.engine import Simulator
from repro.workloads import (
    LinkScenario,
    PRESETS,
    build_hdlc_simulation,
    build_lams_simulation,
    preset,
)
from repro.workloads.generators import (
    ConstantRateSource,
    FiniteBatch,
    OnOffSource,
    SaturatedSource,
)


class Collector:
    """Accept-all packet target recording offers."""

    def __init__(self, refuse_after: int | None = None):
        self.packets = []
        self.refuse_after = refuse_after

    def accept(self, packet):
        if self.refuse_after is not None and len(self.packets) >= self.refuse_after:
            return False
        self.packets.append(packet)
        return True


class TestGenerators:
    def test_finite_batch_offers_all(self):
        sim = Simulator()
        target = Collector()
        batch = FiniteBatch(sim, target, count=10)
        batch.start()
        assert batch.offered == 10 and len(target.packets) == 10

    def test_finite_batch_counts_refusals(self):
        sim = Simulator()
        target = Collector(refuse_after=4)
        batch = FiniteBatch(sim, target, count=10)
        batch.start()
        assert batch.offered == 4 and batch.refused == 6

    def test_constant_rate_timing(self):
        sim = Simulator()
        target = Collector()
        source = ConstantRateSource(sim, target, rate=100.0, limit=5)
        source.start()
        sim.run(until=1.0)
        assert len(target.packets) == 5
        # Packets tagged with creation times 0, 0.01, 0.02, ...
        times = [p[2] for p in target.packets]
        assert times == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04])

    def test_constant_rate_stop(self):
        sim = Simulator()
        target = Collector()
        source = ConstantRateSource(sim, target, rate=100.0)
        source.start()
        sim.schedule(0.05, source.stop)
        sim.run(until=1.0)
        assert len(target.packets) <= 7

    def test_saturated_source_keeps_backlog(self):
        sim = Simulator()
        target = Collector()
        drained = []

        def backlog():
            # Pretend consumption: 10 per poll.
            take = min(10, len(target.packets) - len(drained))
            drained.extend(target.packets[len(drained):len(drained) + take])
            return len(target.packets) - len(drained)

        source = SaturatedSource(
            sim, target, backlog_fn=backlog, low_water=5, chunk=20, poll_interval=0.01
        )
        source.start()
        sim.run(until=0.5)
        source.stop()
        assert source.offered > 100  # kept refilling

    def test_saturated_source_limit(self):
        sim = Simulator()
        target = Collector()
        source = SaturatedSource(
            sim, target, backlog_fn=lambda: 0, low_water=5, chunk=10,
            poll_interval=0.01, limit=25,
        )
        source.start()
        sim.run(until=1.0)
        assert source.offered == 25

    def test_on_off_source_bursts(self):
        sim = Simulator()
        target = Collector()
        source = OnOffSource(
            sim, target, rate=1000.0, on_duration=0.01, off_duration=0.09
        )
        source.start()
        sim.run(until=0.30)
        source.stop()
        times = [p[2] for p in target.packets]
        # All sends fall inside on-phases: t mod 0.1 < ~0.011.
        assert all((t % 0.1) < 0.012 for t in times)
        assert len(times) >= 20

    def test_invalid_parameters(self):
        sim = Simulator()
        target = Collector()
        with pytest.raises(ValueError):
            ConstantRateSource(sim, target, rate=0)
        with pytest.raises(ValueError):
            OnOffSource(sim, target, rate=10, on_duration=0, off_duration=1)
        with pytest.raises(ValueError):
            FiniteBatch(sim, target, count=-1)


class TestScenarios:
    def test_presets_exist(self):
        for name in ("short_hop", "nominal", "long_haul", "noisy"):
            assert preset(name).name == name

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("marsnet")

    def test_derived_quantities(self):
        scenario = LinkScenario(bit_rate=300e6, distance_km=5000)
        assert scenario.round_trip_time == pytest.approx(2 * 5000 / 299792.458)
        assert scenario.iframe_time == pytest.approx(scenario.iframe_bits / 300e6)
        assert scenario.timeout == pytest.approx(scenario.round_trip_time + scenario.alpha)

    def test_model_parameters_consistent(self):
        scenario = preset("nominal")
        params = scenario.model_parameters()
        assert params.round_trip_time == pytest.approx(scenario.round_trip_time)
        assert params.window_size == scenario.window_size

    def test_config_factories(self):
        scenario = preset("nominal")
        lams = scenario.lams_config()
        hdlc = scenario.hdlc_config()
        assert lams.checkpoint_interval == scenario.checkpoint_interval
        assert hdlc.timeout == pytest.approx(scenario.timeout)
        overridden = scenario.lams_config(cumulation_depth=7)
        assert overridden.cumulation_depth == 7

    def test_build_simulations_run(self):
        for build in (build_lams_simulation, build_hdlc_simulation):
            setup = build(preset("short_hop"), seed=2)
            FiniteBatch(setup.sim, setup.endpoint_a, count=50).start()
            setup.run(until=3.0)
            assert len(setup.delivered) == 50

    def test_with_replaces(self):
        scenario = preset("nominal").with_(distance_km=2000.0)
        assert scenario.distance_km == 2000.0


class TestRunner:
    def test_batch_transfer_completes(self):
        result = measure_batch_transfer(preset("short_hop"), "lams", 200, seed=1)
        assert result["completed"]
        assert result["delivered"] == 200
        assert 0 < result["efficiency"] <= 1.0

    def test_batch_transfer_hdlc(self):
        result = measure_batch_transfer(preset("short_hop"), "hdlc", 200, seed=1)
        assert result["completed"]
        assert result["delivered"] == 200

    def test_saturated_reports_metrics(self):
        result = measure_saturated(preset("short_hop"), "lams", duration=0.5, seed=1)
        assert result["delivered"] > 0
        assert 0 < result["efficiency"] <= 1.0
        assert result["sendbuf_max"] >= result["sendbuf_avg"]

    def test_constant_rate_growth_detection(self):
        lams = measure_constant_rate(preset("short_hop"), "lams", duration=1.0, load=0.5, seed=1)
        hdlc = measure_constant_rate(preset("short_hop"), "hdlc", duration=1.0, load=0.5, seed=1)
        assert lams["growth"] < hdlc["growth"]

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            measure_batch_transfer(preset("short_hop"), "tcp", 10)

    def test_failure_recovery_zero_loss(self):
        result = measure_failure_recovery(
            preset("short_hop"), outage_start=0.02, outage_duration=0.01,
            total_time=5.0, n_frames=500, seed=2,
        )
        assert result["lost"] == 0


class TestRegistry:
    def test_all_ids_registered(self):
        for eid in (
            "E1", "E2", "E3", "E4", "E4-sim", "E5", "E6", "E6-ber",
            "E7", "E8", "E9", "E10", "E11", "E12",
        ):
            assert eid in REGISTRY
        assert set(experiment_ids()) == set(REGISTRY)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    @pytest.mark.parametrize("eid", ["E1", "E2", "E3", "E4", "E5", "E6", "E6-ber", "E7", "E9", "E11"])
    def test_model_experiments_produce_rows(self, eid):
        result = run_experiment(eid)
        assert result.rows, eid
        assert result.experiment_id == eid
        assert result.title

    def test_column_accessor(self):
        result = run_experiment("E1")
        assert len(result.column("ber")) == len(result.rows)


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(3) == "3"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(0.0) == "0"
        assert format_value("text") == "text"

    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_table_empty(self):
        assert "(empty)" in render_table([], title="T")

    def test_render_series(self):
        text = render_series("x", [1, 2], {"y": [10, 20], "z": [0.1, 0.2]})
        assert "x" in text and "y" in text and "z" in text
        assert "20" in text

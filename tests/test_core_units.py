"""Unit tests for LAMS-DLC building blocks: sequence space, send buffer,
flow control, frames, and configuration."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import LamsDlcConfig
from repro.core.flowcontrol import StopGoRateController
from repro.core.frames import CheckpointFrame, IFrame, RequestNakFrame
from repro.core.sendbuf import OutstandingFrame, SendBuffer
from repro.core.seqspace import (
    SequenceExhausted,
    SequenceSpace,
    cyclic_less_equal,
    forward_distance,
)


class TestForwardDistance:
    def test_basic(self):
        assert forward_distance(0, 5, 16) == 5
        assert forward_distance(14, 2, 16) == 4
        assert forward_distance(5, 5, 16) == 0

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            forward_distance(0, 1, 0)

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_distance_inverse(self, a, b):
        d = forward_distance(a, b, 256)
        assert (a + d) % 256 == b

    def test_cyclic_less_equal(self):
        # Reference 250: 252 is before 3 going forward.
        assert cyclic_less_equal(252, 3, reference=250, modulus=256)
        assert not cyclic_less_equal(3, 252, reference=250, modulus=256)


class TestSequenceSpace:
    def test_sequential_allocation(self):
        space = SequenceSpace(8)
        assert [space.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_wraparound_after_release(self):
        space = SequenceSpace(4)
        for _ in range(4):
            space.release(space.allocate())
        assert space.allocate() == 0  # wrapped

    def test_exhaustion_raises(self):
        space = SequenceSpace(4)
        for _ in range(4):
            space.allocate()
        with pytest.raises(SequenceExhausted):
            space.allocate()

    def test_cursor_blocked_by_outstanding(self):
        space = SequenceSpace(4)
        seqs = [space.allocate() for _ in range(4)]
        space.release(seqs[1])
        space.release(seqs[2])
        space.release(seqs[3])
        # Cursor is at 0, which is still outstanding.
        with pytest.raises(SequenceExhausted):
            space.allocate()

    def test_release_unknown_raises(self):
        space = SequenceSpace(8)
        with pytest.raises(KeyError):
            space.release(3)

    def test_membership_and_counts(self):
        space = SequenceSpace(8)
        seq = space.allocate()
        assert seq in space and space.is_outstanding(seq)
        assert space.outstanding_count == 1
        space.release(seq)
        assert seq not in space
        assert space.outstanding_count == 0

    def test_minimum_modulus(self):
        with pytest.raises(ValueError):
            SequenceSpace(1)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    def test_uniqueness_invariant(self, operations):
        """Under any allocate/release-oldest interleaving, outstanding
        numbers are always distinct and within the modulus."""
        space = SequenceSpace(16)
        outstanding: list[int] = []
        for do_allocate in operations:
            if do_allocate:
                try:
                    seq = space.allocate()
                except SequenceExhausted:
                    assert len(outstanding) >= 1
                    continue
                assert seq not in outstanding  # the paper's invariant
                assert 0 <= seq < 16
                outstanding.append(seq)
            elif outstanding:
                space.release(outstanding.pop(0))
        assert space.outstanding_count == len(outstanding)

    @given(st.integers(min_value=2, max_value=64))
    def test_full_cycle_reuses_in_order(self, modulus):
        space = SequenceSpace(modulus)
        first_pass = []
        for _ in range(modulus):
            seq = space.allocate()
            first_pass.append(seq)
            space.release(seq)
        second_pass = []
        for _ in range(modulus):
            seq = space.allocate()
            second_pass.append(seq)
            space.release(seq)
        assert first_pass == second_pass == list(range(modulus))


class TestSendBuffer:
    def make_record(self, seq: int, now: float = 0.0) -> OutstandingFrame:
        return OutstandingFrame(
            seq=seq, payload=f"p{seq}", enqueue_time=now, send_time=now,
            expected_arrival=now + 0.01, transmit_index=seq,
        )

    def test_enqueue_and_pop(self):
        buffer = SendBuffer()
        assert buffer.enqueue("a", now=1.0)
        assert buffer.enqueue("b", now=2.0)
        assert buffer.pop_pending() == ("a", 1.0)
        assert buffer.pending_count == 1

    def test_capacity_refusal(self):
        buffer = SendBuffer(capacity=2)
        assert buffer.enqueue("a", 0.0) and buffer.enqueue("b", 0.0)
        assert not buffer.enqueue("c", 0.0)
        assert buffer.refused_total == 1

    def test_occupancy_counts_both_sides(self):
        buffer = SendBuffer()
        buffer.enqueue("a", 0.0)
        buffer.record_outstanding(self.make_record(0))
        assert buffer.occupancy == 2
        assert buffer.peak_occupancy == 2

    def test_duplicate_outstanding_rejected(self):
        buffer = SendBuffer()
        buffer.record_outstanding(self.make_record(1))
        with pytest.raises(ValueError):
            buffer.record_outstanding(self.make_record(1))

    def test_release_measures_holding_from_first_send(self):
        buffer = SendBuffer()
        record = self.make_record(0, now=10.0)
        buffer.record_outstanding(record)
        released = buffer.release(0, now=10.5)
        assert released.payload == "p0"
        assert buffer.mean_holding_time == pytest.approx(0.5)

    def test_holding_time_survives_renumbering(self):
        """A retransmitted frame carries first_send_time forward."""
        buffer = SendBuffer()
        original = self.make_record(0, now=1.0)
        buffer.record_outstanding(original)
        detached = buffer.remove(0)
        renumbered = OutstandingFrame(
            seq=5, payload=detached.payload, enqueue_time=detached.enqueue_time,
            send_time=3.0, expected_arrival=3.01, transmit_index=7,
            retransmit_count=1, first_send_time=detached.first_send_time,
        )
        buffer.record_outstanding(renumbered)
        buffer.release(5, now=4.0)
        assert buffer.mean_holding_time == pytest.approx(3.0)  # 4.0 - 1.0

    def test_outstanding_iteration_in_transmit_order(self):
        buffer = SendBuffer()
        for seq, index in ((3, 2), (1, 0), (2, 1)):
            record = self.make_record(seq)
            record.transmit_index = index
            buffer.record_outstanding(record)
        indices = [r.transmit_index for r in buffer.outstanding_frames()]
        assert indices == [0, 1, 2]

    def test_pending_payloads_snapshot(self):
        buffer = SendBuffer()
        buffer.enqueue("x", 0.0)
        buffer.enqueue("y", 0.0)
        assert buffer.pending_payloads() == ["x", "y"]

    def test_clear(self):
        buffer = SendBuffer()
        buffer.enqueue("a", 0.0)
        buffer.record_outstanding(self.make_record(0))
        buffer.clear()
        assert buffer.occupancy == 0


class TestStopGoRateController:
    def test_full_rate_initially(self):
        controller = StopGoRateController()
        assert controller.rate_fraction == 1.0
        assert controller.inter_frame_gap(0.001) == 0.001

    def test_stop_halves_rate(self):
        controller = StopGoRateController(decrease_factor=0.5)
        controller.on_stop_go(True)
        assert controller.rate_fraction == 0.5
        assert controller.inter_frame_gap(0.001) == pytest.approx(0.002)

    def test_repeated_stops_keep_decreasing(self):
        controller = StopGoRateController(decrease_factor=0.5, min_fraction=0.05)
        for _ in range(10):
            controller.on_stop_go(True)
        assert controller.rate_fraction == pytest.approx(0.05)

    def test_go_recovers_additively(self):
        controller = StopGoRateController(decrease_factor=0.5, increase_step=0.1)
        controller.on_stop_go(True)
        controller.on_stop_go(False)
        assert controller.rate_fraction == pytest.approx(0.6)

    def test_rate_capped_at_one(self):
        controller = StopGoRateController(increase_step=0.5)
        for _ in range(5):
            controller.on_stop_go(False)
        assert controller.rate_fraction == 1.0

    def test_disabled_controller_ignores_signals(self):
        controller = StopGoRateController(enabled=False)
        controller.on_stop_go(True)
        assert controller.rate_fraction == 1.0
        assert controller.inter_frame_gap(0.002) == 0.002

    def test_reset(self):
        controller = StopGoRateController()
        controller.on_stop_go(True)
        controller.reset()
        assert controller.rate_fraction == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StopGoRateController(decrease_factor=1.5)
        with pytest.raises(ValueError):
            StopGoRateController(increase_step=0)
        with pytest.raises(ValueError):
            StopGoRateController(min_fraction=0)


class TestFrames:
    def test_iframe_validation(self):
        with pytest.raises(ValueError):
            IFrame(seq=-1, payload=None, size_bits=100)
        with pytest.raises(ValueError):
            IFrame(seq=0, payload=None, size_bits=0)

    def test_checkpoint_duplicate_naks_rejected(self):
        with pytest.raises(ValueError):
            CheckpointFrame(cp_index=0, issue_time=0.0, naks=(1, 1))

    def test_resolving_command_detection(self):
        resolving = CheckpointFrame(cp_index=0, issue_time=0.0, enforced=True)
        assert resolving.is_resolving_command
        with_errors = CheckpointFrame(
            cp_index=0, issue_time=0.0, naks=(3,), enforced=True
        )
        assert not with_errors.is_resolving_command

    def test_frame_class_flags(self):
        iframe = IFrame(seq=0, payload=None, size_bits=10)
        checkpoint = CheckpointFrame(cp_index=0, issue_time=0.0)
        request = RequestNakFrame(request_time=0.0)
        assert not iframe.is_control
        assert checkpoint.is_control and request.is_control


class TestLamsConfig:
    def test_defaults_valid(self):
        config = LamsDlcConfig()
        assert config.iframe_bits == config.iframe_payload_bits + config.iframe_overhead_bits
        assert config.numbering_size == 2**config.numbering_bits

    def test_checkpoint_timeout(self):
        config = LamsDlcConfig(checkpoint_interval=0.01, cumulation_depth=4)
        assert config.checkpoint_timeout == pytest.approx(0.04)

    def test_cframe_bits_grows_with_naks(self):
        config = LamsDlcConfig(cframe_base_bits=96, cframe_per_nak_bits=16)
        assert config.cframe_bits(0) == 96
        assert config.cframe_bits(5) == 176
        with pytest.raises(ValueError):
            config.cframe_bits(-1)

    def test_resolving_period_formula(self):
        config = LamsDlcConfig(checkpoint_interval=0.01, cumulation_depth=3)
        # R + W_cp/2 + C_depth * W_cp
        assert config.resolving_period(0.1) == pytest.approx(0.1 + 0.005 + 0.03)

    def test_required_numbering_size(self):
        config = LamsDlcConfig(checkpoint_interval=0.01, cumulation_depth=3)
        frame_time = 1e-4
        expected = config.resolving_period(0.1) / frame_time
        assert config.required_numbering_size(0.1, frame_time) >= expected

    def test_validate_for_link_rejects_small_space(self):
        config = LamsDlcConfig(numbering_bits=4)
        with pytest.raises(ValueError, match="numbering size"):
            config.validate_for_link(round_trip_time=0.1, bit_rate=1e9)

    def test_validate_for_link_accepts_ample_space(self):
        config = LamsDlcConfig(numbering_bits=20)
        config.validate_for_link(round_trip_time=0.05, bit_rate=100e6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LamsDlcConfig(checkpoint_interval=0)
        with pytest.raises(ValueError):
            LamsDlcConfig(cumulation_depth=0)
        with pytest.raises(ValueError):
            LamsDlcConfig(numbering_bits=0)
        with pytest.raises(ValueError):
            LamsDlcConfig(rate_decrease_factor=1.0)
        with pytest.raises(ValueError):
            LamsDlcConfig(receive_low_watermark=100, receive_high_watermark=10)

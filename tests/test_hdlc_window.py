"""Unit tests for HDLC window arithmetic and configuration."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdlc.config import HdlcConfig
from repro.hdlc.frames import HdlcIFrame, RejFrame, RrFrame, SrejFrame
from repro.hdlc.window import (
    ReceiverWindow,
    SenderWindow,
    in_window,
    increment,
    window_offset,
)


class TestWindowArithmetic:
    def test_increment_wraps(self):
        assert increment(7, 8) == 0
        assert increment(3, 8, by=6) == 1

    def test_offset(self):
        assert window_offset(6, 2, 8) == 4
        assert window_offset(2, 2, 8) == 0

    def test_in_window(self):
        assert in_window(6, 7, size=4, modulus=8)
        assert in_window(6, 1, size=4, modulus=8)
        assert not in_window(6, 2, size=4, modulus=8)

    @given(
        base=st.integers(min_value=0, max_value=127),
        seq=st.integers(min_value=0, max_value=127),
        size=st.integers(min_value=1, max_value=64),
    )
    def test_in_window_consistent_with_offset(self, base, seq, size):
        assert in_window(base, seq, size, 128) == (window_offset(base, seq, 128) < size)


class TestSenderWindow:
    def test_send_until_exhausted(self):
        window = SenderWindow(size=3, modulus=8)
        assert [window.next_ns() for _ in range(3)] == [0, 1, 2]
        assert not window.can_send
        with pytest.raises(RuntimeError):
            window.next_ns()

    def test_cumulative_ack_slides(self):
        window = SenderWindow(size=4, modulus=8)
        for _ in range(4):
            window.next_ns()
        acked = window.acknowledge(3)  # acks 0, 1, 2
        assert acked == [0, 1, 2]
        assert window.outstanding == 1
        assert window.can_send

    def test_stale_ack_ignored(self):
        window = SenderWindow(size=4, modulus=8)
        for _ in range(2):
            window.next_ns()
        window.acknowledge(2)
        assert window.acknowledge(2) == []  # repeat: no progress
        assert window.acknowledge(7) == []  # insane: outside (va, vs]

    def test_ack_across_wraparound(self):
        window = SenderWindow(size=4, modulus=8)
        # Advance near the wrap point.
        for _ in range(6):
            window.next_ns()
            window.acknowledge(window.vs)
        # va = vs = 6; send 4 more crossing the modulus.
        sent = [window.next_ns() for _ in range(4)]
        assert sent == [6, 7, 0, 1]
        acked = window.acknowledge(1)
        assert acked == [6, 7, 0]

    def test_holds(self):
        window = SenderWindow(size=4, modulus=8)
        window.next_ns()
        window.next_ns()
        assert window.holds(0) and window.holds(1)
        assert not window.holds(2)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SenderWindow(size=0, modulus=8)
        with pytest.raises(ValueError):
            SenderWindow(size=8, modulus=8)


class TestReceiverWindow:
    def test_in_order_delivery(self):
        window = ReceiverWindow(size=4, modulus=8)
        assert window.store(0, "a") == ["a"]
        assert window.store(1, "b") == ["b"]
        assert window.vr == 2

    def test_out_of_order_held_then_released(self):
        window = ReceiverWindow(size=4, modulus=8)
        assert window.store(1, "b") == []
        assert window.held_count == 1
        assert window.store(0, "a") == ["a", "b"]
        assert window.held_count == 0

    def test_missing_lists_gaps(self):
        window = ReceiverWindow(size=8, modulus=16)
        window.store(2, "c")
        window.store(4, "e")
        assert window.missing() == [0, 1, 3]

    def test_duplicate_detection_held(self):
        window = ReceiverWindow(size=4, modulus=8)
        window.store(1, "b")
        assert window.is_duplicate(1)

    def test_duplicate_detection_delivered(self):
        window = ReceiverWindow(size=4, modulus=8)
        window.store(0, "a")
        assert window.is_duplicate(0)
        assert not window.is_duplicate(1)

    def test_out_of_window_rejected(self):
        window = ReceiverWindow(size=4, modulus=16)
        assert not window.accepts(10)
        assert window.store(10, "x") == []

    def test_peak_held(self):
        window = ReceiverWindow(size=8, modulus=16)
        for ns in (1, 2, 3, 4):
            window.store(ns, str(ns))
        assert window.peak_held == 4

    @given(st.permutations(list(range(8))))
    def test_any_arrival_order_delivers_in_order(self, order):
        window = ReceiverWindow(size=8, modulus=16)
        delivered = []
        for ns in order:
            delivered.extend(window.store(ns, ns))
        assert delivered == list(range(8))


class TestHdlcConfig:
    def test_defaults(self):
        config = HdlcConfig()
        assert config.modulus == 128
        assert config.effective_ack_every == config.window_size

    def test_sr_window_bound(self):
        with pytest.raises(ValueError, match="W <= M/2"):
            HdlcConfig(window_size=65, sequence_bits=7)

    def test_gbn_window_bound(self):
        HdlcConfig(window_size=127, sequence_bits=7, selective=False)
        with pytest.raises(ValueError):
            HdlcConfig(window_size=128, sequence_bits=7, selective=False)

    def test_timeout_for_link(self):
        assert HdlcConfig.timeout_for_link(0.1, 0.05) == pytest.approx(0.15)
        with pytest.raises(ValueError):
            HdlcConfig.timeout_for_link(0.1, -0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HdlcConfig(window_size=0)
        with pytest.raises(ValueError):
            HdlcConfig(timeout=0)
        with pytest.raises(ValueError):
            HdlcConfig(ack_every=0)


class TestHdlcFrames:
    def test_iframe_validation(self):
        with pytest.raises(ValueError):
            HdlcIFrame(ns=-1, payload=None, size_bits=100)

    def test_srej_requires_numbers(self):
        with pytest.raises(ValueError):
            SrejFrame(nrs=())
        with pytest.raises(ValueError):
            SrejFrame(nrs=(1, 1))

    def test_control_flags(self):
        assert RrFrame(nr=0).is_control
        assert SrejFrame(nrs=(1,)).is_control
        assert RejFrame(nr=0).is_control
        assert not HdlcIFrame(ns=0, payload=None, size_bits=1).is_control

"""Run the library's docstring examples as tests.

Several modules carry executable usage examples in their docstrings;
this keeps them honest.
"""

from __future__ import annotations

import doctest

import pytest

import repro.api
import repro.core.seqspace
import repro.fec.interleaver
import repro.simulator.engine
import repro.simulator.rng

MODULES = [
    repro.api,
    repro.simulator.engine,
    repro.simulator.rng,
    repro.fec.interleaver,
    repro.core.seqspace,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.IGNORE_EXCEPTION_DETAIL,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"

"""Tests for the protocol extensions: zero-duplication mode, stutter
HDLC, the link-session manager, and the delay-distribution analysis."""

from __future__ import annotations

import pytest

from repro.analysis import delay
from repro.analysis import lams as lams_model
from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.experiments.runner import measure_batch_transfer, measure_failure_recovery
from repro.hdlc import HdlcConfig, hdlc_pair
from repro.session import LinkPass, LinkSessionManager, PassSchedule
from repro.session.factories import hdlc_session_factory, lams_session_factory
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    Simulator,
    StreamRegistry,
)
from repro.simulator.orbit import VisibilityWindow
from repro.workloads import preset


def make_link(sim, seed=1, iframe_ber=1e-6, cframe_ber=1e-8):
    return FullDuplexLink(
        sim, bit_rate=100e6, propagation_delay=0.010, name="x",
        iframe_errors=BernoulliChannel(iframe_ber),
        cframe_errors=BernoulliChannel(cframe_ber),
        streams=StreamRegistry(seed=seed),
    )


class TestZeroDuplication:
    def test_outage_recovery_without_duplicates(self):
        result = measure_failure_recovery(
            preset("nominal"), outage_start=0.05, outage_duration=0.02,
            total_time=10.0, n_frames=3000, seed=4,
            overrides={"zero_duplication": True},
        )
        assert result["recovered"]
        assert result["lost"] == 0
        assert result["duplicates"] == 0

    def test_baseline_mode_produces_duplicates_in_same_scenario(self):
        """The control: identical run without the extension duplicates."""
        result = measure_failure_recovery(
            preset("nominal"), outage_start=0.05, outage_duration=0.02,
            total_time=10.0, n_frames=3000, seed=4,
            overrides={"zero_duplication": False},
        )
        assert result["recovered"]
        assert result["lost"] == 0
        assert result["duplicates"] > 0

    def test_suppression_counted_at_receiver(self):
        sim = Simulator()
        link = make_link(sim, seed=4)
        config = LamsDlcConfig(
            checkpoint_interval=0.005, cumulation_depth=3, zero_duplication=True
        )
        delivered = []
        a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        for i in range(2000):
            a.accept(("pkt", i))
        sim.schedule_at(0.030, link.down)
        sim.schedule_at(0.050, link.up)
        sim.run(until=10.0)
        ids = [p[1] for p in delivered]
        assert len(ids) == len(set(ids)), "a duplicate reached the network layer"
        assert sorted(ids) == list(range(2000))
        # The conservative enforced retransmissions were suppressed.
        assert b.receiver.duplicates_suppressed > 0

    def test_no_suppression_on_clean_run(self):
        sim = Simulator()
        link = make_link(sim, seed=5, iframe_ber=0.0, cframe_ber=0.0)
        config = LamsDlcConfig(zero_duplication=True)
        delivered = []
        a, b = lams_dlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start(send=True, receive=False)
        b.start(send=False, receive=True)
        for i in range(500):
            a.accept(("pkt", i))
        sim.run(until=5.0)
        assert b.receiver.duplicates_suppressed == 0
        assert len(delivered) == 500


class TestStutterMode:
    def test_stutter_sends_extra_copies_when_stalled(self):
        sim = Simulator()
        link = make_link(sim, seed=6, iframe_ber=0.0, cframe_ber=0.0)
        config = HdlcConfig(window_size=8, sequence_bits=7, timeout=0.06, stutter=True)
        delivered = []
        a, b = hdlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start()
        for i in range(8):
            a.accept(("pkt", i))
        sim.run(until=1.0)
        assert len(delivered) == 8
        assert a.sender.stutter_transmissions > 0
        # Receiver saw and discarded the extra copies.
        assert b.receiver.duplicates > 0

    def test_stutter_speeds_up_lossy_batch(self):
        scenario = preset("noisy").with_(window_size=16)
        durations = {}
        for stutter in (False, True):
            result = measure_batch_transfer(
                scenario, "hdlc", 400, seed=9,
                overrides={"stutter": stutter}, max_time=120.0,
            )
            assert result["completed"]
            durations[stutter] = result["duration"]
        assert durations[True] < durations[False]

    def test_stutter_off_by_default(self):
        sim = Simulator()
        link = make_link(sim, seed=7, iframe_ber=0.0, cframe_ber=0.0)
        delivered = []
        a, b = hdlc_pair(sim, link, HdlcConfig(window_size=8, timeout=0.06),
                         deliver_b=delivered.append)
        a.start()
        for i in range(8):
            a.accept(("pkt", i))
        sim.run(until=1.0)
        assert a.sender.stutter_transmissions == 0

    def test_stutter_exactly_once_delivery(self):
        sim = Simulator()
        link = make_link(sim, seed=8, iframe_ber=1e-5, cframe_ber=1e-6)
        config = HdlcConfig(window_size=16, sequence_bits=7, timeout=0.06, stutter=True)
        delivered = []
        a, b = hdlc_pair(sim, link, config, deliver_b=delivered.append)
        a.start()
        for i in range(300):
            a.accept(("pkt", i))
        sim.run(until=60.0)
        assert [p[1] for p in delivered] == list(range(300))


class TestPassSchedule:
    def test_periodic_construction(self):
        schedule = PassSchedule.periodic(first_start=1.0, duration=2.0, gap=0.5, count=3)
        assert len(schedule) == 3
        assert schedule.total_link_time == pytest.approx(6.0)
        assert schedule.passes[1].start == pytest.approx(3.5)

    def test_from_orbit_windows(self):
        windows = [VisibilityWindow(0.0, 10.0), VisibilityWindow(20.0, 25.0)]
        schedule = PassSchedule.from_windows(windows)
        assert len(schedule) == 2
        assert schedule.passes[1].duration == pytest.approx(5.0)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            PassSchedule([LinkPass(0.0, 5.0), LinkPass(4.0, 8.0)])

    def test_invalid_pass(self):
        with pytest.raises(ValueError):
            LinkPass(5.0, 5.0)
        with pytest.raises(ValueError):
            PassSchedule.periodic(0.0, 1.0, 1.0, count=0)


class TestSessionManager:
    def run_session(self, factory, config, n=4000, seed=2, init_time=0.05,
                    iframe_ber=1e-6):
        sim = Simulator()
        link = make_link(sim, seed=seed, iframe_ber=iframe_ber)
        schedule = PassSchedule.periodic(first_start=0.1, duration=0.4, gap=0.3, count=4)
        delivered = []
        manager = LinkSessionManager(
            sim, link, schedule, factory(config),
            init_time=init_time, deliver=delivered.append,
        )
        for i in range(n):
            manager.send(("pkt", i))
        sim.run(until=4.0)
        return manager, delivered

    def test_lams_sessions_zero_loss_across_passes(self):
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        manager, delivered = self.run_session(lams_session_factory, config)
        ids = {p[1] for p in delivered}
        assert manager.passes_run == 4
        # Everything delivered or still queued: nothing vanished.
        assert len(ids) + manager.backlog >= 4000
        assert ids >= set(range(3000))  # the bulk got through

    def test_carryover_replays_unresolved(self):
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        manager, delivered = self.run_session(
            lams_session_factory, config, n=8000
        )
        # More than one pass was needed, so carry-over happened.
        assert manager.carried_over > 0
        assert manager.session_history[0]["reclaimed"] > 0

    def test_duplicates_only_from_carryover(self):
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        manager, delivered = self.run_session(lams_session_factory, config, n=8000)
        ids = [p[1] for p in delivered]
        duplicates = len(ids) - len(set(ids))
        assert duplicates <= manager.carried_over

    def test_hdlc_sessions_also_work(self):
        config = HdlcConfig(window_size=32, sequence_bits=7, timeout=0.06)
        manager, delivered = self.run_session(hdlc_session_factory, config, n=1500)
        assert manager.passes_run == 4
        ids = {p[1] for p in delivered}
        assert len(ids) + manager.backlog >= 1500

    def test_init_overhead_consumes_link_time(self):
        """A pass shorter than the overhead transmits nothing."""
        sim = Simulator()
        link = make_link(sim, seed=3, iframe_ber=0.0)
        schedule = PassSchedule([LinkPass(0.1, 0.15)])  # 50 ms pass
        delivered = []
        config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
        manager = LinkSessionManager(
            sim, link, schedule, lams_session_factory(config),
            init_time=0.2, deliver=delivered.append,
        )
        manager.send(("pkt", 0))
        sim.run(until=1.0)
        assert delivered == []
        assert manager.backlog == 1
        assert manager.passes_run == 0

    def test_invalid_init_time(self):
        sim = Simulator()
        link = make_link(sim)
        schedule = PassSchedule.periodic(0.0, 1.0, 1.0, 1)
        with pytest.raises(ValueError):
            LinkSessionManager(sim, link, schedule, lambda *a: (None, None), init_time=-1)


class TestDelayAnalysis:
    def make_params(self, **overrides):
        return preset("noisy").with_(**overrides).model_parameters()

    def test_attempts_for_quantile(self):
        assert delay.attempts_for_quantile(0.0, 0.99) == 1
        assert delay.attempts_for_quantile(0.5, 0.5) == 1
        # P[S<=2] = 1 - 0.25 = 0.75 < 0.76, so three attempts are needed.
        assert delay.attempts_for_quantile(0.5, 0.76) == 3
        with pytest.raises(ValueError):
            delay.attempts_for_quantile(0.5, 1.0)

    def test_quantiles_monotone(self):
        params = self.make_params()
        quantiles = [0.5, 0.9, 0.99, 0.9999]
        values = [delay.lams_delay_quantile(params, q) for q in quantiles]
        assert values == sorted(values)

    def test_first_attempt_delay(self):
        params = self.make_params()
        expected = params.iframe_time + params.round_trip_time / 2
        assert delay.lams_delay_for_attempts(params, 1) == pytest.approx(expected)

    def test_mean_delay_consistent_with_mixture(self):
        params = self.make_params()
        # Evaluate the mixture numerically and compare to the closed form.
        from repro.analysis.errorprobs import geometric_period_pmf
        p_r = params.p_f
        numeric = sum(
            geometric_period_pmf(p_r, k) * delay.lams_delay_for_attempts(params, k)
            for k in range(1, 400)
        )
        assert delay.lams_mean_delay(params) == pytest.approx(numeric, rel=1e-9)

    def test_hdlc_tail_heavier_than_lams(self):
        """Same quantile: HDLC pays timeouts, LAMS pays checkpoint waits."""
        params = self.make_params(alpha=0.1)
        assert delay.hdlc_delay_quantile(params, 0.9999) > delay.lams_delay_quantile(
            params, 0.9999
        )

    def test_resequencing_buffer_bound_positive_and_scales(self):
        clean = self.make_params(iframe_ber=1e-7)
        noisy = self.make_params(iframe_ber=1e-5)
        assert delay.resequencing_buffer_bound(noisy) > delay.resequencing_buffer_bound(clean) >= 0

    def test_invalid_attempts(self):
        params = self.make_params()
        with pytest.raises(ValueError):
            delay.lams_delay_for_attempts(params, 0)
        with pytest.raises(ValueError):
            delay.hdlc_delay_for_attempts(params, 0)

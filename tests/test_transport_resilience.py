"""Tests for the supervised session lifecycle (transport resilience).

The :class:`~repro.transport.supervisor.SessionSupervisor` promises
bounded establishment, dead-peer detection, reconnect-with-backoff, and
backlog replay across restarts — may fail, must never hang, never loses
acknowledged data.  These tests drive real loopback UDP sessions
through transport-level fault plans and assert those guarantees, with
the invariant monitors armed throughout.

No pytest-asyncio in the toolchain: async pieces run under
``asyncio.run`` inside plain test functions.
"""

from __future__ import annotations

import asyncio
import errno

import pytest

from repro.faults import (
    EndpointStall,
    FaultPlan,
    HandshakeBlackhole,
    PeerRestart,
    SendErrorBurst,
)
from repro.simulator import Tracer
from repro.transport import (
    AsyncioClock,
    Deadline,
    DecorrelatedJitterBackoff,
    Impairments,
    SupervisorPolicy,
    UdpLink,
    golden_scenario,
    run_supervised_transfer,
)


def _violations(result):
    suite = result.monitors
    return [] if suite is None else list(suite.violations)


# -- Deadline --------------------------------------------------------------


class TestDeadline:
    def test_counts_down_and_expires(self):
        ticks = iter([0.0, 0.4, 0.9, 1.1])
        clock = lambda: next(ticks)
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(0.6)
        assert not deadline.expired
        assert deadline.expired

    def test_remaining_never_negative(self):
        now = [0.0]
        deadline = Deadline(0.5, clock=lambda: now[0])
        now[0] = 2.0
        assert deadline.remaining() == 0.0
        assert deadline.elapsed() == pytest.approx(2.0)

    def test_sub_deadline_capped_by_parent(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        now[0] = 0.8
        child = deadline.sub(5.0)
        assert child.remaining() == pytest.approx(0.2)
        small = deadline.sub(0.05)
        assert small.remaining() == pytest.approx(0.05)


# -- DecorrelatedJitterBackoff ---------------------------------------------


class TestDecorrelatedJitterBackoff:
    def _rng(self, seed=0):
        import numpy as np

        return np.random.Generator(np.random.PCG64(seed))

    def test_deterministic_for_a_seeded_rng(self):
        a = DecorrelatedJitterBackoff(0.05, 2.0, self._rng(7))
        b = DecorrelatedJitterBackoff(0.05, 2.0, self._rng(7))
        assert [a.next() for _ in range(6)] == [b.next() for _ in range(6)]

    def test_delays_respect_base_and_cap(self):
        backoff = DecorrelatedJitterBackoff(0.05, 0.3, self._rng(1))
        delays = [backoff.next() for _ in range(50)]
        assert all(0.05 <= d <= 0.3 for d in delays)
        # The decorrelated window must actually grow to the cap.
        assert max(delays) > 0.2

    def test_reset_shrinks_the_window(self):
        backoff = DecorrelatedJitterBackoff(0.05, 10.0, self._rng(2))
        for _ in range(8):
            backoff.next()
        backoff.reset()
        assert backoff.next() <= 0.15  # back inside [base, 3*base]


# -- SupervisorPolicy ------------------------------------------------------


class TestSupervisorPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(handshake_timeout=0.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(heartbeat_timeout=-1.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_base=0.5, backoff_cap=0.1)

    def test_for_scenario_is_slower_than_the_protocol(self):
        scenario = golden_scenario("clean")
        config = scenario.protocol_config("lams")
        policy = SupervisorPolicy.for_scenario(scenario, config=config)
        # The protocol's own detection machinery gets first claim.
        assert policy.handshake_timeout > config.checkpoint_timeout
        from repro.faults.metrics import declared_failure_bound

        bound = declared_failure_bound(config, scenario.round_trip_time)
        assert policy.heartbeat_timeout > bound

    def test_for_scenario_overrides_win(self):
        policy = SupervisorPolicy.for_scenario(
            golden_scenario("clean"), max_attempts=2, heartbeat_timeout=9.0,
        )
        assert policy.max_attempts == 2
        assert policy.heartbeat_timeout == 9.0


# -- supervised lifecycle over real sockets --------------------------------


class TestSupervisedTransfer:
    def test_clean_session_completes_in_one_attempt(self):
        result = run_supervised_transfer(
            golden_scenario("clean"), "lams", seed=3,
            n_frames=16, timeout=20.0,
        )
        assert result.completed
        assert result.failure_reason is None
        assert result.attempts == 1
        assert result.reconnects == 0
        assert result.digest == result.expected_digest
        assert _violations(result) == []

    def test_peer_restart_recovers_via_reconnect_and_replay(self):
        """The acceptance scenario: a mid-transfer peer restart must
        complete through supervised reconnect + backlog replay with
        zero invariant violations and no lost acknowledged data."""
        scenario = golden_scenario("clean")
        plan = FaultPlan(faults=(PeerRestart(start=0.03, duration=0.4),))
        policy = SupervisorPolicy.for_scenario(
            scenario, max_attempts=8, backoff_cap=0.3,
        )
        result = run_supervised_transfer(
            scenario, "lams", seed=11, n_frames=24, timeout=25.0,
            policy=policy, fault_plan=plan,
        )
        assert result.completed, result.failure_reason
        assert result.reconnects >= 1
        assert result.stats["payloads_reclaimed"] > 0
        assert result.delivered_unique == 24
        assert result.digest == result.expected_digest
        assert _violations(result) == []

    def test_dead_peer_declared_within_heartbeat_bound(self):
        """A peer that stops scheduling entirely — with the protocol's
        own watchdog slowed so it cannot react first — must yield a
        reason-tagged declared failure within the heartbeat budget."""
        scenario = golden_scenario("clean")
        stall_start, heartbeat = 0.3, 0.25
        # Slow the protocol detectors below the supervisor's heartbeat
        # so the keepalive is provably the one that fires.
        overrides = {"checkpoint_interval": 0.05, "cumulation_depth": 8}
        plan = FaultPlan(faults=(
            EndpointStall(start=stall_start, duration=30.0, endpoint="b"),
        ))
        policy = SupervisorPolicy(
            handshake_timeout=1.0, heartbeat_timeout=heartbeat, max_attempts=1,
        )
        result = run_supervised_transfer(
            scenario, "lams", seed=5, n_frames=400, timeout=20.0,
            policy=policy, overrides=overrides, fault_plan=plan,
        )
        assert not result.completed
        assert result.failure_reason == "peer-dead"
        # Detection bound: stall start + heartbeat budget + poll slack.
        assert result.elapsed <= stall_start + heartbeat + 0.5
        assert _violations(result) == []

    def test_handshake_blackhole_retries_until_established(self):
        scenario = golden_scenario("clean")
        plan = FaultPlan(faults=(
            HandshakeBlackhole(start=0.0, duration=0.8),
        ))
        policy = SupervisorPolicy.for_scenario(
            scenario, max_attempts=10, backoff_cap=0.3,
        )
        result = run_supervised_transfer(
            scenario, "lams", seed=9, n_frames=16, timeout=25.0,
            policy=policy, fault_plan=plan,
        )
        assert result.completed, result.failure_reason
        assert result.attempts > 1
        assert result.stats["datagrams_blackholed"] > 0
        assert _violations(result) == []

    def test_send_error_burst_is_absorbed(self):
        scenario = golden_scenario("clean")
        plan = FaultPlan(faults=(
            SendErrorBurst(start=0.01, duration=0.15,
                           probability=1.0, direction="forward"),
        ))
        result = run_supervised_transfer(
            scenario, "lams", seed=13, n_frames=24, timeout=25.0,
            policy=SupervisorPolicy.for_scenario(scenario, max_attempts=8,
                                                 backoff_cap=0.3),
            fault_plan=plan,
        )
        assert result.completed, result.failure_reason
        assert result.stats["send_errors"] > 0
        assert result.digest == result.expected_digest
        assert _violations(result) == []

    def test_pre_set_stop_event_interrupts_immediately(self):
        stop = asyncio.Event()
        stop.set()
        result = run_supervised_transfer(
            golden_scenario("clean"), "lams", seed=1,
            n_frames=8, timeout=10.0, stop_event=stop,
        )
        assert not result.completed
        assert result.failure_reason == "interrupted"
        assert result.attempts == 0


# -- OS send-path errors ---------------------------------------------------


class TestOsSendErrors:
    def test_transient_oserror_counted_and_survived(self):
        """A kernel sendto failure is accounted as a lost datagram and
        the pump keeps running — no exception escapes the socket."""

        class _Boom:
            def __init__(self):
                self.calls = 0

            def sendto(self, data, addr):
                self.calls += 1
                raise OSError(errno.ENOBUFS, "no buffer space")

            def close(self):
                pass

        async def scenario():
            clock = AsyncioClock()
            tracer = Tracer(record_timeline=True)
            link = await UdpLink.open(
                clock, name="oserr", bit_rate=2e6,
                impairments=Impairments(), seed=0, tracer=tracer,
            )
            sock = link.socket_a
            real = sock._transport
            boom = _Boom()
            sock._transport = boom
            try:
                sock.sendto(b"datagram")
                sock.sendto(b"datagram")
            finally:
                sock._transport = real
                link.close()
                clock.close()
            events = [r for r in tracer.timeline()
                      if r.event == "udp_send_error"]
            return boom.calls, sock.send_errors, events

        calls, send_errors, events = asyncio.run(scenario())
        assert calls == 2
        assert send_errors == 2
        assert len(events) == 2
        assert all(e.detail.get("forced") is False for e in events)
        assert events[0].detail.get("errno") == errno.ENOBUFS

"""Shared fixtures for the LAMS-DLC reproduction test suite."""

from __future__ import annotations

import pytest

from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    PerfectChannel,
    Simulator,
    StreamRegistry,
    Tracer,
)
from repro.workloads import LinkScenario


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def tracer() -> Tracer:
    """A tracer with the timeline recording enabled."""
    return Tracer(record_timeline=True)


@pytest.fixture
def perfect_link(sim: Simulator) -> FullDuplexLink:
    """100 Mbps, 10 ms one-way, error-free link."""
    return FullDuplexLink(
        sim,
        bit_rate=100e6,
        propagation_delay=0.010,
        name="test",
        iframe_errors=PerfectChannel(),
        cframe_errors=PerfectChannel(),
        streams=StreamRegistry(seed=1),
    )


def make_lossy_link(
    sim: Simulator,
    iframe_ber: float = 1e-6,
    cframe_ber: float = 1e-8,
    seed: int = 1,
    bit_rate: float = 100e6,
    delay: float = 0.010,
) -> FullDuplexLink:
    """A link with Bernoulli bit errors on both directions."""
    return FullDuplexLink(
        sim,
        bit_rate=bit_rate,
        propagation_delay=delay,
        name="lossy",
        iframe_errors=BernoulliChannel(iframe_ber),
        cframe_errors=BernoulliChannel(cframe_ber),
        streams=StreamRegistry(seed=seed),
    )


@pytest.fixture
def nominal_scenario() -> LinkScenario:
    """The paper's nominal operating point."""
    return LinkScenario()

"""Network-layer rerouting on declared link failure.

Closes the paper's failure loop end-to-end: the LAMS-DLC sender
declares a failure and "informs the network layer" (Section 3.2); the
network layer recomputes routes around the dead link and re-injects the
DLC's retained frames — zero loss across a permanent link cut, with
duplicates (frames delivered but unacknowledged before the cut)
removed by the destination resequencer.
"""

from __future__ import annotations

import pytest

from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.netlayer import (
    DatagramService,
    DeliveryLog,
    ForwardingNetworkLayer,
    shortest_path_routes,
)
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    Node,
    Simulator,
    StreamRegistry,
)


def build_ring_with_failover(sim, size=4, seed=51):
    """A ring where every node knows the topology (rerouting enabled)."""
    names = [f"n{i}" for i in range(size)]
    topology: dict[str, dict[str, str]] = {name: {} for name in names}
    for i in range(size):
        j = (i + 1) % size
        topology[names[i]][names[j]] = f"l{i}"
        topology[names[j]][names[i]] = f"l{i}"

    logs = {name: DeliveryLog(sim) for name in names}
    nodes, layers, links = {}, {}, {}
    for name in names:
        layer = ForwardingNetworkLayer(
            sim, address=name,
            routes=shortest_path_routes(topology, name),
            deliver=logs[name],
            topology=topology,
        )
        node = Node(sim, name, network_layer=layer)
        layer.bind(node)
        nodes[name], layers[name] = node, layer

    config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
    for i in range(size):
        j = (i + 1) % size
        link = FullDuplexLink(
            sim, bit_rate=100e6, propagation_delay=0.008, name=f"l{i}",
            iframe_errors=BernoulliChannel(1e-6),
            cframe_errors=BernoulliChannel(1e-8),
            streams=StreamRegistry(seed=seed + i),
        )
        left, right = names[i], names[j]
        a, b = lams_dlc_pair(
            sim, link, config,
            deliver_a=lambda pkt, ln=f"l{i}", nd=left: nodes[nd].deliver_up(pkt, ln),
            deliver_b=lambda pkt, ln=f"l{i}", nd=right: nodes[nd].deliver_up(pkt, ln),
            on_failure_a=lambda ln=f"l{i}", nd=left: nodes[nd].report_link_failure(ln),
            on_failure_b=lambda ln=f"l{i}", nd=right: nodes[nd].report_link_failure(ln),
        )
        a.start()
        b.start()
        nodes[left].attach_endpoint(f"l{i}", a)
        nodes[right].attach_endpoint(f"l{i}", b)
        links[f"l{i}"] = link

    services = {name: DatagramService(sim, layers[name]) for name in names}
    return names, nodes, layers, services, logs, links


class TestShortestPathExclusion:
    def test_exclude_links_reroutes(self):
        topology = {
            "a": {"b": "ab", "c": "ac"},
            "b": {"a": "ab", "d": "bd"},
            "c": {"a": "ac", "d": "cd"},
            "d": {"b": "bd", "c": "cd"},
        }
        direct = shortest_path_routes(topology, "a")
        assert direct["d"] in ("ab", "ac")  # two equal 2-hop paths
        rerouted = shortest_path_routes(topology, "a", exclude_links={"ab"})
        assert rerouted["d"] == "ac"
        assert rerouted["b"] == "ac"  # b now reached the long way

    def test_partition_drops_destinations(self):
        topology = {"a": {"b": "ab"}, "b": {"a": "ab"}}
        routes = shortest_path_routes(topology, "a", exclude_links={"ab"})
        assert routes == {}


class TestFailover:
    def test_permanent_cut_reroutes_with_zero_loss(self):
        sim = Simulator()
        names, nodes, layers, services, logs, links = build_ring_with_failover(sim)
        n = 400
        for i in range(n):
            services["n0"].send("n1", data=i)
        # Cut the direct n0—n1 link mid-transfer, permanently.
        sim.schedule_at(0.012, links["l0"].down)
        sim.run(until=20.0)

        # The DLC declared the failure and the layer rerouted.
        assert "l0" in layers["n0"].failed_links
        assert layers["n0"].rerouted > 0
        # New route goes the long way around: n3 carried transit traffic.
        assert layers["n3"].forwarded > 0

        # Zero loss, exactly once, in order at the destination.
        assert logs["n1"].exactly_once("n0", n)
        assert logs["n1"].in_order("n0")

    def test_duplicates_from_cut_are_absorbed(self):
        """Frames delivered but unacknowledged before the cut are re-sent
        the long way; the resequencer drops them silently."""
        sim = Simulator()
        names, nodes, layers, services, logs, links = build_ring_with_failover(sim)
        n = 400
        for i in range(n):
            services["n0"].send("n1", data=i)
        sim.schedule_at(0.012, links["l0"].down)
        sim.run(until=20.0)
        reseq = layers["n1"].resequencer
        assert reseq.duplicates_dropped >= 0
        assert len(logs["n1"]) == n  # exactly n delivered upward

    def test_static_layer_only_records(self):
        """Without a topology the layer records the failure and nothing
        else (the pre-failover behaviour, still supported)."""
        sim = Simulator()
        layer = ForwardingNetworkLayer(sim, address="x", routes={})
        layer.on_link_failure("l9")
        assert layer.link_failures == ["l9"]
        assert layer.failed_links == set()

"""Runtime invariant monitors: clean runs stay clean, broken ones are caught.

The acceptance bar for the monitor suite runs in both directions:

- a nominal LAMS-DLC run (and one crossing a declared link failure)
  must finish with *zero* violations, and
- a deliberately broken protocol double — here, a duplicate-delivering
  destination — must be caught with a report that names the invariant,
  carries the trace window around the violation, and stamps the
  reproducer context (seed / scenario) onto it.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.invariants import (
    CheckpointCoverageMonitor,
    DestinationOrderingMonitor,
    MonitorSuite,
    ReceiverQueueBoundMonitor,
    ZeroLossLedger,
    attach_monitors,
    fault_silence_windows,
)
from repro.invariants.monitors import merge_windows
from repro.simulator.trace import Tracer
from repro.workloads import preset
from repro.workloads.generators import FiniteBatch
from repro.workloads.scenarios import build_simulation


def run_monitored(scenario_name="nominal", n_frames=200, fault_plan=None,
                  until=2.0, seed=1, **overrides):
    scenario = preset(scenario_name).with_(checkpoint_interval=0.005)
    setup = build_simulation(
        scenario, "lams", seed=seed, overrides=overrides or None,
        fault_plan=fault_plan, run_with_invariants=True,
    )
    batch = FiniteBatch(setup.sim, setup.endpoint_a, n_frames)
    batch.start()
    setup.run(until=until)
    suite = setup.finalize_monitors()
    return setup, suite


class TestCleanRunsStayClean:
    def test_nominal_run_all_invariants_held(self):
        setup, suite = run_monitored()
        assert suite.ok
        assert suite.report() == "all invariants held"
        assert len(setup.delivered) == 200
        # Every monitor is armed and none fired.
        names = set(suite.summary())
        assert {"zero-loss", "destination-ordering", "receiver-queue-bound",
                "holding-time-bound", "checkpoint-coverage",
                "failure-latency"} <= names
        assert all(count == 0 for count in suite.summary().values())

    def test_declared_failure_run_stays_clean(self):
        """An outage long enough to declare link failure leaves stranded
        frames — the ledger must count them as held, not lost, and the
        failure-latency monitor must see the declaration in bound."""
        plan = FaultPlan.single_outage(start=0.3, duration=0.4)
        setup, suite = run_monitored(fault_plan=plan, until=3.0)
        assert setup.recovery is not None
        assert setup.recovery.failures_declared >= 1
        assert suite.ok, suite.report()

    def test_finalize_is_idempotent(self):
        setup, suite = run_monitored(n_frames=50, until=1.0)
        again = setup.finalize_monitors()
        assert again is suite
        assert suite.ok


class TestBrokenProtocolCaught:
    """The acceptance criterion: an injected duplicate-delivery bug in a
    test double is caught and fully attributed."""

    def make_suite(self, monitors, context=None):
        tracer = Tracer()
        suite = MonitorSuite(
            tracer, monitors,
            context=context or {"seed": 1234, "scenario": "broken-double",
                                "master_seed": 99, "episode": 7},
        )
        return tracer, suite

    def test_duplicate_delivery_named_with_window_and_seed(self):
        tracer, suite = self.make_suite([DestinationOrderingMonitor()])
        for time, seq in ((0.1, 0), (0.2, 1), (0.3, 1), (0.4, 2)):
            tracer.emit(time, "dest", "dest_deliver", flow="a", seq=seq)
        suite.finalize(0.5)
        [violation] = suite.violations
        assert violation.invariant == "destination-ordering"
        assert "duplicate" in violation.message
        assert violation.time == pytest.approx(0.3)
        # The report carries its own reproducer.
        assert violation.context["seed"] == 1234
        assert violation.context["episode"] == 7
        assert violation.trace_window
        assert any("dest_deliver" in line for line in violation.trace_window)
        as_dict = violation.as_dict()
        assert as_dict["invariant"] == "destination-ordering"
        assert "destination-ordering" in suite.report()
        assert not suite.ok

    def test_one_duplicate_yields_one_violation_not_a_cascade(self):
        tracer, suite = self.make_suite([DestinationOrderingMonitor()])
        sequence = [0, 1, 1, 2, 3, 4, 5]
        for index, seq in enumerate(sequence):
            tracer.emit(0.1 * (index + 1), "dest", "dest_deliver", flow="a", seq=seq)
        suite.finalize(1.0)
        assert len(suite.violations) == 1

    def test_skipped_sequence_caught(self):
        tracer, suite = self.make_suite([DestinationOrderingMonitor()])
        for time, seq in ((0.1, 0), (0.2, 2)):
            tracer.emit(time, "dest", "dest_deliver", flow="a", seq=seq)
        suite.finalize(0.5)
        [violation] = suite.violations
        assert "out-of-order/skipped" in violation.message

    def test_lost_payload_caught_by_ledger(self):
        tracer, suite = self.make_suite([ZeroLossLedger()])
        tracer.emit(0.1, "a", "payload_accepted", payload=("pkt", 0))
        tracer.emit(0.2, "a", "payload_accepted", payload=("pkt", 1))
        tracer.emit(0.3, "b", "payload_delivered", payload=("pkt", 0))
        suite.finalize(1.0)
        [violation] = suite.violations
        assert violation.invariant == "zero-loss"
        assert violation.detail["lost_count"] == 1
        assert ("pkt", 1) in violation.detail["sample"]

    def test_held_backlog_is_not_loss(self):
        tracer = Tracer()
        suite = MonitorSuite(
            tracer, [ZeroLossLedger()],
            held_snapshot=lambda: [("pkt", 1)],
        )
        tracer.emit(0.1, "a", "payload_accepted", payload=("pkt", 0))
        tracer.emit(0.2, "a", "payload_accepted", payload=("pkt", 1))
        tracer.emit(0.3, "b", "payload_delivered", payload=("pkt", 0))
        suite.finalize(1.0)
        assert suite.ok

    def test_missing_cumulative_nak_caught(self):
        tracer, suite = self.make_suite([CheckpointCoverageMonitor(3)])
        tracer.emit(0.10, "b", "error_logged", seq=5)
        # The next non-enforced checkpoint omits seq 5 entirely.
        tracer.emit(0.15, "b", "checkpoint_sent", seqs=(2, 3), enforced=False)
        suite.finalize(0.2)
        [violation] = suite.violations
        assert violation.invariant == "checkpoint-coverage"
        assert violation.detail["seq"] == 5

    def test_cumulative_nak_repeated_c_depth_times_is_clean(self):
        tracer, suite = self.make_suite([CheckpointCoverageMonitor(2)])
        tracer.emit(0.10, "b", "error_logged", seq=5)
        tracer.emit(0.15, "b", "checkpoint_sent", seqs=(5,), enforced=False)
        tracer.emit(0.20, "b", "checkpoint_sent", seqs=(5,), enforced=False)
        # After C_depth repeats the seq may drop out of later NAK lists.
        tracer.emit(0.25, "b", "checkpoint_sent", seqs=(), enforced=False)
        suite.finalize(0.3)
        assert suite.ok

    def test_receiver_queue_bound_violation_fires_once(self):
        tracer, suite = self.make_suite([ReceiverQueueBoundMonitor(bound=4)])
        tracer.emit(0.1, "b", "rxqueue_level", depth=10)
        tracer.emit(0.2, "b", "rxqueue_level", depth=11)
        suite.finalize(0.3)
        assert len(suite.violations) == 1
        assert suite.violations[0].invariant == "receiver-queue-bound"


class TestFaultWindowDerivation:
    def test_outage_and_blackout_are_silence_windows(self):
        plan = FaultPlan.from_dict({
            "name": "w", "faults": [
                {"kind": "outage", "start": 0.1, "duration": 0.2,
                 "direction": "both"},
                {"kind": "feedback-blackout", "start": 0.5, "duration": 0.1},
            ],
        })
        windows = fault_silence_windows(plan)
        assert (0.1, pytest.approx(0.3)) in [
            (s, pytest.approx(e)) for s, e in windows
        ] or windows[0][0] == 0.1
        assert len(windows) == 2

    def test_forward_only_outage_is_not_feedback_silence(self):
        plan = FaultPlan.from_dict({
            "name": "w", "faults": [
                {"kind": "outage", "start": 0.1, "duration": 0.2,
                 "direction": "forward"},
            ],
        })
        assert fault_silence_windows(plan) == []

    def test_merge_windows(self):
        merged = merge_windows([(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)])
        assert merged == [(0.0, 2.0), (3.0, 4.0)]


class TestAttachValidation:
    def test_attach_requires_lams_shaped_setup(self):
        scenario = preset("nominal")
        setup = build_simulation(scenario, "hdlc", seed=1)
        with pytest.raises(ValueError, match="invariant"):
            attach_monitors(setup, scenario)

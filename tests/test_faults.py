"""Tests for the fault-injection subsystem (plan, injector, metrics).

Covers: fault-plan validation and JSON round-trips, the injector's
channel manipulation (outages, nesting, model swap/restore, control
corruption), recovery metrics against the paper's Section 3.2 latency
bounds, and bit-identical determinism — repeated runs and parallel
sweep execution must agree exactly.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.registry import e21_fault_matrix, run_experiment
from repro.experiments.runner import measure_fault_plan
from repro.faults import (
    TRANSPORT_FAULT_KINDS,
    BerStorm,
    ControlCorruption,
    EndpointStall,
    FaultInjector,
    FaultPlan,
    FeedbackBlackout,
    HandshakeBlackhole,
    LinkOutage,
    PeerRestart,
    RecoveryMetrics,
    SendErrorBurst,
    declared_failure_bound,
    detection_bound,
    fault_from_dict,
)
from repro.simulator.engine import Simulator
from repro.simulator.errormodel import BernoulliChannel, PerfectChannel
from repro.simulator.link import FullDuplexLink
from repro.simulator.rng import StreamRegistry
from repro.simulator.trace import Tracer
from repro.workloads.scenarios import build_simulation, preset


def make_link(sim, seed=0, tracer=None):
    return FullDuplexLink(
        sim, bit_rate=1e6, propagation_delay=0.010,
        streams=StreamRegistry(seed=seed), tracer=tracer,
    )


FULL_PLAN = FaultPlan(
    faults=(
        LinkOutage(start=0.1, duration=0.05),
        FeedbackBlackout(start=0.3, duration=0.02),
        BerStorm(start=0.5, duration=0.1, model="bernoulli",
                 params={"ber": 1e-3}, direction="forward"),
        ControlCorruption(start=0.7, duration=0.05, probability=0.5),
    ),
    name="everything",
)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="negative"):
            LinkOutage(start=-1.0, duration=1.0)
        with pytest.raises(ValueError, match="positive"):
            LinkOutage(start=0.0, duration=0.0)
        with pytest.raises(ValueError, match="direction"):
            LinkOutage(start=0.0, duration=1.0, direction="sideways")
        with pytest.raises(ValueError, match="target"):
            BerStorm(start=0.0, duration=1.0, targets=("header",))
        with pytest.raises(ValueError, match="at least one"):
            BerStorm(start=0.0, duration=1.0, targets=())
        with pytest.raises(ValueError, match="probability"):
            ControlCorruption(start=0.0, duration=1.0, probability=1.5)
        with pytest.raises(TypeError, match="not a fault"):
            FaultPlan(faults=("oops",))

    def test_derived_properties(self):
        outage = LinkOutage(start=0.2, duration=0.3)
        assert outage.end == pytest.approx(0.5)
        assert FeedbackBlackout(start=0.0, duration=1.0).direction == "reverse"
        assert FULL_PLAN.horizon == pytest.approx(0.75)
        assert len(FULL_PLAN) == 4
        assert len(FULL_PLAN.outages()) == 2
        assert FaultPlan().horizon == 0.0

    def test_json_round_trip_all_kinds(self):
        text = FULL_PLAN.to_json(indent=2)
        rebuilt = FaultPlan.from_json(text)
        assert rebuilt == FULL_PLAN
        assert rebuilt.name == "everything"

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_from_dict({"kind": "meteor", "start": 0.0, "duration": 1.0})
        with pytest.raises(ValueError, match="unknown field"):
            fault_from_dict({"kind": "outage", "start": 0.0, "duration": 1.0,
                             "severity": 9})

    def test_single_outage_helper(self):
        plan = FaultPlan.single_outage(start=1.0, duration=2.0)
        assert len(plan) == 1
        assert plan.faults[0].kind == "outage"
        assert plan.faults[0].end == pytest.approx(3.0)

    def test_storm_params_mapping_canonicalised(self):
        a = BerStorm(start=0.0, duration=1.0, params={"ber": 1e-4})
        b = BerStorm(start=0.0, duration=1.0, params=(("ber", 1e-4),))
        assert a == b
        assert a.model_kwargs == {"ber": 1e-4}


TRANSPORT_PLAN = FaultPlan(
    faults=(
        SendErrorBurst(start=0.05, duration=0.1, probability=0.5,
                       direction="reverse"),
        EndpointStall(start=0.2, duration=0.3, endpoint="a"),
        PeerRestart(start=0.6, duration=0.2),
        HandshakeBlackhole(start=0.0, duration=0.4),
    ),
    name="transport",
)


class TestTransportFaultKinds:
    def test_validation(self):
        with pytest.raises(ValueError, match="probability"):
            SendErrorBurst(start=0.0, duration=1.0, probability=0.0)
        with pytest.raises(ValueError, match="direction"):
            SendErrorBurst(start=0.0, duration=1.0, direction="sideways")
        with pytest.raises(ValueError, match="endpoint"):
            EndpointStall(start=0.0, duration=1.0, endpoint="c")
        with pytest.raises(ValueError, match="endpoint"):
            PeerRestart(start=0.0, duration=1.0, endpoint="ab")
        with pytest.raises(ValueError, match="positive"):
            HandshakeBlackhole(start=0.0, duration=0.0)

    def test_direction_derived_from_endpoint(self):
        assert EndpointStall(start=0.0, duration=1.0, endpoint="b").direction == "reverse"
        assert EndpointStall(start=0.0, duration=1.0, endpoint="a").direction == "forward"
        assert PeerRestart(start=0.0, duration=1.0).direction == "reverse"
        assert HandshakeBlackhole(start=0.0, duration=1.0).direction == "both"

    def test_json_round_trip_all_transport_kinds(self):
        rebuilt = FaultPlan.from_json(TRANSPORT_PLAN.to_json())
        assert rebuilt == TRANSPORT_PLAN
        assert {f.kind for f in rebuilt} == TRANSPORT_FAULT_KINDS
        assert rebuilt.transport_faults() == list(rebuilt.faults)
        assert FULL_PLAN.transport_faults() == []

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError, match="unknown field"):
            fault_from_dict({"kind": "peer-restart", "start": 0.0,
                             "duration": 1.0, "pid": 42})
        with pytest.raises(ValueError, match="unknown field"):
            fault_from_dict({"kind": "handshake-blackhole", "start": 0.0,
                             "duration": 1.0, "endpoint": "b"})
        with pytest.raises(TypeError):
            fault_from_dict({"kind": "endpoint-stall", "endpoint": "a"})

    def test_des_injector_rejects_transport_kinds(self):
        sim = Simulator()
        link = make_link(sim)
        for fault in TRANSPORT_PLAN:
            with pytest.raises(ValueError, match="transport-native"):
                FaultInjector(sim, link, FaultPlan(faults=(fault,)))


class TestFaultInjector:
    def probe(self, sim, link, plan, times):
        """Channel up/down state sampled at the given times."""
        injector = FaultInjector(sim, link, plan)
        states = {}
        for t in times:
            sim.schedule_at(
                t, lambda t=t: states.update(
                    {t: (link.forward.is_up, link.reverse.is_up)}
                )
            )
        sim.run()
        return injector, states

    def test_outage_cuts_and_restores_both(self):
        sim = Simulator()
        link = make_link(sim)
        plan = FaultPlan.single_outage(start=1.0, duration=1.0)
        injector, states = self.probe(sim, link, plan, [0.5, 1.5, 2.5])
        assert states[0.5] == (True, True)
        assert states[1.5] == (False, False)
        assert states[2.5] == (True, True)
        assert injector.faults_started == injector.faults_ended == 1

    def test_directional_outage(self):
        sim = Simulator()
        link = make_link(sim)
        plan = FaultPlan(faults=(
            LinkOutage(start=1.0, duration=1.0, direction="forward"),
        ))
        _, states = self.probe(sim, link, plan, [1.5])
        assert states[1.5] == (False, True)

    def test_feedback_blackout_cuts_reverse_only(self):
        sim = Simulator()
        link = make_link(sim)
        plan = FaultPlan(faults=(FeedbackBlackout(start=1.0, duration=1.0),))
        _, states = self.probe(sim, link, plan, [1.5])
        assert states[1.5] == (True, False)

    def test_overlapping_outages_nest(self):
        sim = Simulator()
        link = make_link(sim)
        plan = FaultPlan(faults=(
            LinkOutage(start=1.0, duration=2.0),
            LinkOutage(start=1.5, duration=0.2),
        ))
        _, states = self.probe(sim, link, plan, [1.8, 2.5, 3.5])
        assert states[1.8] == (False, False)  # inner fault ended, outer holds
        assert states[2.5] == (False, False)
        assert states[3.5] == (True, True)

    def test_does_not_restore_channel_it_never_downed(self):
        """A channel someone else (the session manager) put down stays down."""
        sim = Simulator()
        link = make_link(sim)
        link.down()
        plan = FaultPlan.single_outage(start=1.0, duration=1.0)
        _, states = self.probe(sim, link, plan, [2.5])
        assert states[2.5] == (False, False)

    def test_ber_storm_swaps_and_restores_models(self):
        sim = Simulator()
        link = make_link(sim)
        original = link.forward.iframe_errors
        plan = FaultPlan(faults=(
            BerStorm(start=1.0, duration=1.0, model="bernoulli",
                     params={"ber": 0.5}, direction="forward"),
        ))
        FaultInjector(sim, link, plan)
        seen = {}
        sim.schedule_at(1.5, lambda: seen.update(mid=link.forward.iframe_errors))
        sim.run()
        assert isinstance(seen["mid"], BernoulliChannel)
        assert seen["mid"].ber == pytest.approx(0.5)
        assert link.forward.iframe_errors is original
        assert link.reverse.iframe_errors is not seen["mid"]

    def test_control_corruption_targets_cframes_only(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Frame:
            size_bits: int = 1000
            is_control: bool = False

        sim = Simulator()
        link = make_link(sim)
        arrived = []
        link.attach(lambda f, c: arrived.append(("rev", f.is_control, c)),
                    lambda f, c: arrived.append(("fwd", f.is_control, c)))
        plan = FaultPlan(faults=(
            ControlCorruption(start=0.0001, duration=2.0, probability=1.0,
                              direction="reverse"),
        ))
        FaultInjector(sim, link, plan)
        sim.schedule_at(0.001, lambda: link.reverse.send(Frame(is_control=True)))
        sim.schedule_at(0.001, lambda: link.reverse.send(Frame(is_control=False)))
        sim.run(until=5.0)
        assert ("rev", True, True) in arrived    # control frame corrupted
        assert ("rev", False, False) in arrived  # data frame untouched
        assert isinstance(link.reverse.cframe_errors, PerfectChannel)  # restored

    def test_emits_fault_events(self):
        sim = Simulator()
        tracer = Tracer(record_timeline=True)
        link = make_link(sim, tracer=tracer)
        FaultInjector(sim, link, FaultPlan.single_outage(start=1.0, duration=1.0))
        sim.run()
        events = [(r.event, r.detail["kind"]) for r in tracer.timeline("faults")]
        assert events == [("fault_start", "outage"), ("fault_end", "outage")]


class TestRecoveryMetrics:
    def run_outage(self, duration, c_depth=2, seed=7, total_time=2.0):
        scenario = preset("nominal").with_(cumulation_depth=c_depth)
        plan = FaultPlan.single_outage(start=0.05, duration=duration)
        setup = build_simulation(scenario, "lams", seed=seed, fault_plan=plan)
        from repro.workloads.generators import FiniteBatch
        FiniteBatch(setup.sim, setup.endpoint_a, 800).start()
        setup.sim.run(until=total_time)
        return scenario, setup

    def test_setup_carries_fault_objects(self):
        _, setup = self.run_outage(0.01)
        assert setup.fault_injector is not None
        assert isinstance(setup.recovery, RecoveryMetrics)
        assert setup.fault_injector.faults_started == 1

    def test_detection_latency_within_paper_bound(self):
        """Measured probe latency obeys the C_depth * W_cp bound."""
        scenario, setup = self.run_outage(0.2)
        config = scenario.lams_config()
        [outage] = setup.recovery.outages
        assert outage.time_to_checkpoint_timeout is not None
        assert outage.time_to_first_request_nak is not None
        assert outage.time_to_first_request_nak <= detection_bound(config) + 1e-9
        assert detection_bound(config) == pytest.approx(
            config.cumulation_depth * config.checkpoint_interval
        )

    def test_declared_failure_within_response_time_bound(self):
        """Failure declaration lands within C_depth*W_cp + the failure budget."""
        scenario, setup = self.run_outage(0.2)
        config = scenario.lams_config()
        [outage] = setup.recovery.outages
        bound = declared_failure_bound(config, scenario.round_trip_time)
        assert outage.time_to_declared_failure is not None
        assert outage.time_to_declared_failure <= bound + 1e-9
        assert setup.recovery.failures_declared == 1

    def test_short_outage_recovers_instead(self):
        _, setup = self.run_outage(0.03, total_time=3.0)
        [outage] = setup.recovery.outages
        assert outage.time_to_declared_failure is None
        assert outage.time_to_enforced_nak is not None
        assert outage.recovered
        assert outage.post_recovery_delivery_delay is not None
        assert outage.post_recovery_delivery_delay >= 0.0

    def test_frames_lost_counted_per_outage(self):
        _, setup = self.run_outage(0.03, total_time=3.0)
        [outage] = setup.recovery.outages
        assert outage.frames_lost > 0
        assert setup.recovery.frames_lost_total == outage.frames_lost

    def test_summary_shape(self):
        _, setup = self.run_outage(0.03, total_time=3.0)
        summary = setup.recovery.summary()
        assert summary["outages"] == 1
        assert summary["recoveries"] == 1
        assert summary["failures_declared"] == 0
        assert not math.isnan(summary["mean_detection_latency"])


class TestMeasureFaultPlan:
    def test_zero_loss_accounting(self):
        scenario = preset("nominal")
        plan = FaultPlan.single_outage(start=0.05, duration=0.05)
        result = measure_fault_plan(scenario, plan, total_time=3.0,
                                    n_frames=600, seed=3)
        assert result["lost"] == 0
        assert result["faults"] == 1
        assert result["outages"] == 1

    def test_repeated_runs_bit_identical(self):
        scenario = preset("nominal").with_(cumulation_depth=2)
        plan = FaultPlan.single_outage(start=0.05, duration=0.05)
        runs = [
            measure_fault_plan(scenario, plan, total_time=2.0,
                               n_frames=600, seed=11)
            for _ in range(2)
        ]
        assert repr(sorted(runs[0].items())) == repr(sorted(runs[1].items()))


class TestE21:
    def test_matrix_shape_and_bounds(self):
        result = run_experiment("E21")
        assert len(result.rows) == 6
        for row in result.rows:
            assert row["detection_within_bound"]
            assert row["failure_within_bound"]
            assert row["lost"] == 0
        # Deeper cumulation rides out the 50 ms outage; shallow declares.
        by_cell = {(r["c_depth"], r["outage"]): r for r in result.rows}
        assert by_cell[(2, 0.05)]["failure_declared"]
        assert not by_cell[(4, 0.05)]["failure_declared"]

    def test_parallel_sweep_bit_identical(self):
        """E21 through the process pool equals the serial run exactly."""
        from repro.experiments.parallel import run_experiments_parallel

        serial = e21_fault_matrix()
        parallel = run_experiments_parallel(["E21"], jobs=4, cache=None)["E21"]
        assert repr(serial.rows) == repr(parallel.rows)

"""Property tests for the network-layer substrate under adversarial
arrival patterns — the destination-side contract the relaxed-I
architecture depends on."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netlayer.packet import Datagram
from repro.netlayer.resequencer import Resequencer
from repro.netlayer.forwarding import shortest_path_routes


def make_datagram(sequence, source="s"):
    return Datagram(source=source, destination="d", sequence=sequence, created_at=0.0)


class TestResequencerProperties:
    @settings(max_examples=200)
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=120)
    )
    def test_arbitrary_streams_never_duplicate_or_reorder(self, stream):
        """For ANY arrival stream (gaps, duplicates, reordering), the
        output is a strictly increasing prefix of the integers —
        exactly the delivered set with no duplicates, no inversions."""
        out = []
        reseq = Resequencer(deliver=out.append)
        for sequence in stream:
            reseq.push(make_datagram(sequence))
        sequences = [dg.sequence for dg in out]
        assert sequences == sorted(set(sequences))
        assert sequences == list(range(len(sequences)))

    @settings(
        max_examples=100,
        suppress_health_check=[HealthCheck.large_base_example],
    )
    @given(
        st.permutations(list(range(15))),
        st.permutations(list(range(15))),
        st.permutations(["a"] * 15 + ["b"] * 15),
    )
    def test_interleaved_flows_independent(self, order_a, order_b, interleave):
        """Two sources' streams interleaved arbitrarily: each source's
        output is in-order and exactly-once regardless of the other."""
        out = []
        reseq = Resequencer(deliver=out.append)
        queues = {"a": list(order_a), "b": list(order_b)}
        for source in interleave:
            reseq.push(make_datagram(queues[source].pop(0), source=source))
        for source in ("a", "b"):
            sequences = [dg.sequence for dg in out if dg.source == source]
            assert sequences == list(range(15))

    @settings(max_examples=100)
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=80))
    def test_held_count_bounded_by_span(self, stream):
        """The hold buffer never exceeds the span of outstanding gaps."""
        reseq = Resequencer()
        for sequence in stream:
            reseq.push(make_datagram(sequence))
            held = reseq.held_count("s")
            flow = reseq.flows["s"]
            if flow.held:
                span = max(flow.held) - flow.next_expected + 1
                assert held <= span


class TestRoutingProperties:
    @settings(max_examples=50)
    @given(st.integers(min_value=3, max_value=10), st.integers(min_value=0, max_value=9))
    def test_ring_routes_reach_everyone(self, size, origin_index):
        origin_index %= size
        names = [f"n{i}" for i in range(size)]
        topology = {name: {} for name in names}
        for i in range(size):
            j = (i + 1) % size
            topology[names[i]][names[j]] = f"l{i}"
            topology[names[j]][names[i]] = f"l{i}"
        routes = shortest_path_routes(topology, names[origin_index])
        assert set(routes) == set(names) - {names[origin_index]}
        # First hops only ever use the origin's two incident links.
        incident = set(topology[names[origin_index]].values())
        assert set(routes.values()) <= incident

    @settings(max_examples=50)
    @given(st.integers(min_value=4, max_value=10), st.integers(min_value=0, max_value=9))
    def test_single_link_failure_keeps_ring_connected(self, size, failed_index):
        failed_index %= size
        names = [f"n{i}" for i in range(size)]
        topology = {name: {} for name in names}
        for i in range(size):
            j = (i + 1) % size
            topology[names[i]][names[j]] = f"l{i}"
            topology[names[j]][names[i]] = f"l{i}"
        routes = shortest_path_routes(
            topology, names[0], exclude_links={f"l{failed_index}"}
        )
        # A ring minus one link is a path: still fully connected.
        assert set(routes) == set(names) - {names[0]}

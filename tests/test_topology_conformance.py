"""Conformance: the declarative topology build reproduces hand-wiring.

``examples/multihop_store_and_forward.py`` historically built its
four-node relay chain link by link (FullDuplexLink + lams_dlc_pair +
Node/ForwardingNetworkLayer plumbing by hand).  The example now
declares the same chain as a Topology; this test keeps the original
hand-wired construction alive and asserts the
:class:`~repro.topology.ConstellationBuilder` produces *identical*
delivery accounting — same delivered counts, same ordering verdicts,
same mean delays, same per-hop forwarding and retransmission totals —
so the declarative path is provably the same simulation.
"""

from __future__ import annotations

from repro.core import LamsDlcConfig, lams_dlc_pair
from repro.netlayer import (
    DatagramService,
    DeliveryLog,
    ForwardingNetworkLayer,
    shortest_path_routes,
)
from repro.simulator import (
    BernoulliChannel,
    FullDuplexLink,
    Node,
    Simulator,
    StreamRegistry,
)
from repro.topology import LinkSpec, build_constellation, chain_topology

HOPS = 3
IFRAME_BER = 5e-6
N_MESSAGES = 200
UNTIL = 15.0


def _accounting(names, layers, logs, retransmissions):
    first, last = names[0], names[-1]
    fwd, rev = logs[last], logs[first]
    return {
        "forwarded": {name: layers[name].forwarded for name in names},
        "delivered_local": {
            name: layers[name].resequencer.delivered for name in names
        },
        "reordered": {
            name: layers[name].resequencer.out_of_order_arrivals
            for name in names
        },
        "duplicates": {
            name: layers[name].resequencer.duplicates_dropped for name in names
        },
        "fwd": (len(fwd), fwd.in_order(first),
                fwd.exactly_once(first, N_MESSAGES), fwd.mean_delay()),
        "rev": (len(rev), rev.in_order(last),
                rev.exactly_once(last, N_MESSAGES), rev.mean_delay()),
        "retransmissions": retransmissions,
    }


def run_hand_wired():
    """The pre-topology construction, preserved verbatim in spirit."""
    sim = Simulator()
    names = [f"n{i}" for i in range(HOPS + 1)]
    topology = {name: {} for name in names}
    for i in range(HOPS):
        topology[names[i]][names[i + 1]] = f"l{i}"
        topology[names[i + 1]][names[i]] = f"l{i}"

    logs = {name: DeliveryLog(sim) for name in names}
    nodes, layers = {}, {}
    for name in names:
        layer = ForwardingNetworkLayer(
            sim, address=name,
            routes=shortest_path_routes(topology, name),
            deliver=logs[name],
        )
        node = Node(sim, name, network_layer=layer)
        layer.bind(node)
        nodes[name], layers[name] = node, layer

    config = LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3)
    endpoints = {}
    for i in range(HOPS):
        link = FullDuplexLink(
            sim, bit_rate=100e6, propagation_delay=0.010, name=f"l{i}",
            iframe_errors=BernoulliChannel(IFRAME_BER),
            cframe_errors=BernoulliChannel(IFRAME_BER / 100),
            streams=StreamRegistry(seed=100 + i),
        )
        left, right = names[i], names[i + 1]
        a, b = lams_dlc_pair(
            sim, link, config,
            deliver_a=lambda pkt, ln=f"l{i}", nd=left: nodes[nd].deliver_up(pkt, ln),
            deliver_b=lambda pkt, ln=f"l{i}", nd=right: nodes[nd].deliver_up(pkt, ln),
        )
        a.start()
        b.start()
        nodes[left].attach_endpoint(f"l{i}", a)
        nodes[right].attach_endpoint(f"l{i}", b)
        endpoints[(left, f"l{i}")] = a
        endpoints[(right, f"l{i}")] = b

    services = {name: DatagramService(sim, layers[name]) for name in names}
    first, last = names[0], names[-1]
    for i in range(N_MESSAGES):
        services[first].send(last, data=("fwd", i))
        services[last].send(first, data=("rev", i))
    sim.run(until=UNTIL)
    retx = sum(ep.sender.retransmissions for ep in endpoints.values())
    return _accounting(names, layers, logs, retx)


def run_topology_built():
    """The same chain through the declarative topology path."""
    template = LinkSpec(
        config=LamsDlcConfig(checkpoint_interval=0.005, cumulation_depth=3),
        bit_rate=100e6,
        propagation_delay=0.010,
        iframe_errors=("bernoulli", {"ber": IFRAME_BER}),
        cframe_errors=("bernoulli", {"ber": IFRAME_BER / 100}),
    )
    topo = chain_topology(HOPS, template).map_links(
        lambda spec: spec.with_(seed=100 + int(spec.name[1:]))
    )
    constellation = build_constellation(topo)
    names = topo.node_names()
    first, last = names[0], names[-1]
    for i in range(N_MESSAGES):
        constellation.services[first].send(last, data=("fwd", i))
        constellation.services[last].send(first, data=("rev", i))
    constellation.run(until=UNTIL)
    retx = sum(
        runtime.endpoint_a.sender.retransmissions
        + runtime.endpoint_b.sender.retransmissions
        for runtime in constellation.links.values()
    )
    return _accounting(names, constellation.layers, constellation.logs, retx)


def test_topology_build_matches_hand_wired_chain():
    assert run_topology_built() == run_hand_wired()


def test_topology_stats_agree_with_delivery_logs():
    """The builder's per-link taps count exactly the payloads the
    network layers saw (transit + local), independently accounted."""
    template = LinkSpec(
        scenario="short_hop",
        overrides={"checkpoint_interval": 0.005},
    )
    topo = chain_topology(2, template)
    constellation = build_constellation(topo)
    for i in range(50):
        constellation.services["n0"].send("n2", data=("x", i))
    constellation.run(until=5.0)
    assert constellation.datagrams_delivered() == 50
    # Each datagram crosses both hops exactly once: per-link delivered
    # payloads must equal datagrams * hops (no duplicates surfaced).
    rollup = constellation.network_rollup()
    assert rollup["payloads_delivered"] == 100
    assert rollup["forwarded"] == 100
